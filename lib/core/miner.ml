open Rgs_sequence

type mode = All | Closed

type config = {
  min_sup : int;
  mode : mode;
  max_length : int option;
  max_patterns : int option;
  max_gap : int option;
  domains : int option;
  paged_index : bool;
  index_kind : Inverted_index.kind option;
  deadline_s : float option;
  max_nodes : int option;
  max_words : int option;
}

let validate_config cfg =
  if cfg.min_sup < 1 then invalid_arg "Miner: min_sup must be >= 1";
  (match cfg.deadline_s with
  | Some d when d < 0.0 -> invalid_arg "Miner: deadline_s must be >= 0"
  | _ -> ());
  (match cfg.max_nodes with
  | Some n when n < 0 -> invalid_arg "Miner: max_nodes must be >= 0"
  | _ -> ());
  match cfg.max_words with
  | Some w when w < 1 -> invalid_arg "Miner: max_words must be >= 1"
  | _ -> ()

let config ?(mode = Closed) ?max_length ?max_patterns ?max_gap ?domains
    ?(paged_index = false) ?index_kind ?deadline_s ?max_nodes ?max_words
    ~min_sup () =
  let cfg =
    {
      min_sup;
      mode;
      max_length;
      max_patterns;
      max_gap;
      domains;
      paged_index;
      index_kind;
      deadline_s;
      max_nodes;
      max_words;
    }
  in
  validate_config cfg;
  cfg

(* [index_kind] wins over the older [paged_index] flag when both are set. *)
let build_index cfg db =
  match cfg.index_kind with
  | Some kind -> Inverted_index.build_kind kind db
  | None ->
    if cfg.paged_index then Inverted_index.build_paged db
    else Inverted_index.build db

type report = {
  results : Mined.t list;
  truncated : bool;
  outcome : Budget.outcome;
  elapsed_s : float;
}

let log_src = Logs.Src.create "rgs.miner" ~doc:"Repetitive gapped subsequence mining"

module Log = (val Logs.src_log log_src : Logs.LOG)

let describe cfg =
  String.concat ""
    [
      (match cfg.max_gap with
      | Some g -> Printf.sprintf "gap-constrained (<= %d) " g
      | None -> "");
      (match cfg.mode with All -> "all" | Closed -> "closed");
      (match cfg.domains with Some d -> Printf.sprintf ", %d domains" d | None -> "");
      (match cfg.max_length with Some l -> Printf.sprintf ", max_length=%d" l | None -> "");
      (match cfg.max_patterns with Some b -> Printf.sprintf ", max_patterns=%d" b | None -> "");
      (match cfg.deadline_s with Some d -> Printf.sprintf ", deadline=%gs" d | None -> "");
      (match cfg.max_nodes with Some n -> Printf.sprintf ", max_nodes=%d" n | None -> "");
      (match cfg.max_words with Some w -> Printf.sprintf ", max_words=%d" w | None -> "");
    ]

let budget_of cfg =
  match (cfg.deadline_s, cfg.max_nodes, cfg.max_words) with
  | None, None, None -> None
  | deadline_s, max_nodes, max_words ->
    Some (Budget.create ?deadline_s ?max_nodes ?max_words ())

let mine_indexed ?trace cfg idx =
  validate_config cfg;
  (match (cfg.domains, cfg.max_patterns, cfg.max_gap) with
  | Some _, Some _, _ ->
    invalid_arg "Miner: domains cannot be combined with max_patterns"
  | Some _, _, Some _ -> invalid_arg "Miner: domains cannot be combined with max_gap"
  | _ -> ());
  Log.info (fun m -> m "mining %s patterns, min_sup=%d" (describe cfg) cfg.min_sup);
  let budget = budget_of cfg in
  let start = Unix.gettimeofday () in
  let results, outcome =
    match (cfg.max_gap, cfg.domains, cfg.mode) with
    | Some max_gap, _, _ ->
      let results, stats =
        Gap_constrained.mine ?max_length:cfg.max_length ?max_patterns:cfg.max_patterns
          ?budget ?trace idx ~max_gap ~min_sup:cfg.min_sup
      in
      (results, stats.Gap_constrained.outcome)
    | None, Some domains, All ->
      let results, stats =
        Parallel_miner.mine_all ~domains ?max_length:cfg.max_length ?budget ?trace
          idx ~min_sup:cfg.min_sup
      in
      (results, stats.Gsgrow.outcome)
    | None, Some domains, Closed ->
      let results, stats =
        Parallel_miner.mine_closed ~domains ?max_length:cfg.max_length ?budget
          ?trace idx ~min_sup:cfg.min_sup
      in
      (results, stats.Clogsgrow.outcome)
    | None, None, All ->
      let results, stats =
        Gsgrow.mine ?max_length:cfg.max_length ?max_patterns:cfg.max_patterns ?budget
          ?trace idx ~min_sup:cfg.min_sup
      in
      (results, stats.Gsgrow.outcome)
    | None, None, Closed ->
      let results, stats =
        Clogsgrow.mine ?max_length:cfg.max_length ?max_patterns:cfg.max_patterns
          ?budget ?trace idx ~min_sup:cfg.min_sup
      in
      (results, stats.Clogsgrow.outcome)
  in
  let elapsed_s = Unix.gettimeofday () -. start in
  Log.info (fun m ->
      m "found %d pattern(s) (%a) in %.3fs" (List.length results) Budget.pp outcome
        elapsed_s);
  { results; truncated = Budget.is_stop outcome; outcome; elapsed_s }

let mine ?config:cfg ?min_sup ?trace db =
  let cfg =
    match (cfg, min_sup) with
    | Some c, _ -> c
    | None, Some min_sup -> config ~min_sup ()
    | None, None -> invalid_arg "Miner.mine: provide ~config or ~min_sup"
  in
  let idx = build_index cfg db in
  mine_indexed ?trace cfg idx

(* --- checkpoint/resume driver --- *)

let checkpoint_fingerprint cfg db =
  Checkpoint.fingerprint
    ~params:
      [
        (match cfg.mode with All -> "all" | Closed -> "closed");
        string_of_int cfg.min_sup;
        (match cfg.max_length with Some l -> string_of_int l | None -> "-");
      ]
    db

let mine_resumable ?checkpoint ?(resume = false) ?(trace = Trace.null) cfg db =
  validate_config cfg;
  if cfg.max_gap <> None then
    invalid_arg "Miner: checkpointing is not supported with max_gap";
  if cfg.max_patterns <> None then
    invalid_arg "Miner: checkpointing is not supported with max_patterns";
  if resume && checkpoint = None then
    invalid_arg "Miner: resume requires a checkpoint path";
  let start = Unix.gettimeofday () in
  let idx = build_index cfg db in
  let events = Inverted_index.frequent_events idx ~min_sup:cfg.min_sup in
  let fp = checkpoint_fingerprint cfg db in
  let prior =
    match (resume, checkpoint) with
    | true, Some path -> Checkpoint.load_opt ~path ~expected_fingerprint:fp
    | _ -> None
  in
  let prior_completed =
    match prior with None -> [] | Some c -> c.Checkpoint.completed
  in
  let remaining =
    match prior with None -> events | Some c -> c.Checkpoint.remaining
  in
  Log.info (fun m ->
      m "mining %s patterns, min_sup=%d: %d/%d root(s) to mine%s" (describe cfg)
        cfg.min_sup (List.length remaining) (List.length events)
        (if prior <> None then " (resumed)" else ""));
  let budget = budget_of cfg in
  let roots = Array.of_list remaining in
  let domains =
    match cfg.domains with
    | Some d ->
      if d < 1 then invalid_arg "Miner: domains must be >= 1";
      d
    | None -> 1
  in
  let mine_root k =
    match cfg.mode with
    | All ->
      let results, stats =
        Gsgrow.mine ?max_length:cfg.max_length ?budget
          ~trace:(Trace.for_domain trace) ~events ~roots:[ roots.(k) ] idx
          ~min_sup:cfg.min_sup
      in
      (results, stats.Gsgrow.outcome)
    | Closed ->
      let results, stats =
        Clogsgrow.mine ?max_length:cfg.max_length ?budget
          ~trace:(Trace.for_domain trace) ~events ~roots:[ roots.(k) ] idx
          ~min_sup:cfg.min_sup
      in
      (results, stats.Clogsgrow.outcome)
  in
  let slots, halt_reason =
    Parallel_miner.run_pool ~trace
      ~halt_on:(fun (_, outcome) -> Budget.is_stop outcome)
      ~order:(Parallel_miner.largest_first_order idx roots)
      ~domains ~num_roots:(Array.length roots) ~mine_root ()
  in
  let slots = Parallel_miner.retry_failed ~trace ~mine_root slots in
  (* Classify each freshly mined root: fully completed roots advance the
     checkpoint frontier; partially mined and crashed roots stay on it, but
     partial results still reach the report. *)
  let newly_completed = Hashtbl.create 16 in
  let partials = Hashtbl.create 16 in
  let outcome = ref (Option.value halt_reason ~default:Budget.Completed) in
  Array.iteri
    (fun k status ->
      let root = roots.(k) in
      match status with
      | Parallel_miner.Done (results, Budget.Completed) ->
        Hashtbl.replace newly_completed root results
      | Parallel_miner.Done (results, stop) ->
        Hashtbl.replace partials root results;
        outcome := Budget.combine !outcome stop
      | Parallel_miner.Failed _ -> outcome := Budget.combine !outcome Budget.Worker_failed
      | Parallel_miner.Skipped ->
        (* the pool halted before this root; the halt reason (or another
           root's stop outcome) already accounts for it *)
        ())
    slots;
  let outcome = !outcome in
  let completed_results = Hashtbl.create 16 in
  List.iter
    (fun { Checkpoint.root; results } -> Hashtbl.replace completed_results root results)
    prior_completed;
  Hashtbl.iter (Hashtbl.replace completed_results) newly_completed;
  (* Assemble the report in the full root order, so a resumed run completes
     to exactly the uninterrupted run's output. *)
  let results =
    List.concat_map
      (fun root ->
        match Hashtbl.find_opt completed_results root with
        | Some rs -> rs
        | None -> (
          match Hashtbl.find_opt partials root with Some rs -> rs | None -> []))
      events
  in
  (match checkpoint with
  | None -> ()
  | Some path ->
    let completed =
      List.filter_map
        (fun root ->
          Option.map
            (fun results -> { Checkpoint.root; results })
            (Hashtbl.find_opt completed_results root))
        events
    in
    let remaining =
      List.filter (fun root -> not (Hashtbl.mem completed_results root)) events
    in
    let t0 = Trace.now trace in
    Checkpoint.save ~path { Checkpoint.fingerprint = fp; completed; remaining; outcome };
    Trace.span trace Trace.Checkpoint_write ~a0:(List.length completed)
      ~a1:(List.length remaining) ~start:t0);
  let elapsed_s = Unix.gettimeofday () -. start in
  Log.info (fun m ->
      m "found %d pattern(s) (%a) in %.3fs" (List.length results) Budget.pp outcome
        elapsed_s);
  { results; truncated = Budget.is_stop outcome; outcome; elapsed_s }

let landmarks db p = Sup_comp.landmarks (Inverted_index.build db) p
let support db p = Sup_comp.support (Inverted_index.build db) p

let pp_report ?codec ?(limit = 20) ppf report =
  let pp_one =
    match codec with Some c -> Mined.pp_with c | None -> Mined.pp
  in
  let sorted = List.sort Mined.compare_by_support_desc report.results in
  let total = List.length sorted in
  let suffix =
    match report.outcome with
    | Budget.Completed -> ""
    | Budget.Truncated -> " (truncated)"
    | o -> Printf.sprintf " (partial: %s)" (Budget.to_string o)
  in
  Format.fprintf ppf "@[<v>%d pattern%s%s in %.3fs@," total
    (if total = 1 then "" else "s")
    suffix report.elapsed_s;
  List.iteri
    (fun k r -> if k < limit then Format.fprintf ppf "  %a@," pp_one r)
    sorted;
  if total > limit then Format.fprintf ppf "  ... (%d more)@," (total - limit);
  Format.fprintf ppf "@]"
