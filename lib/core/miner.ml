open Rgs_sequence

type mode = All | Closed

type config = {
  min_sup : int;
  mode : mode;
  max_length : int option;
  max_patterns : int option;
  max_gap : int option;
  domains : int option;
  paged_index : bool;
}

let config ?(mode = Closed) ?max_length ?max_patterns ?max_gap ?domains
    ?(paged_index = false) ~min_sup () =
  { min_sup; mode; max_length; max_patterns; max_gap; domains; paged_index }

type report = {
  results : Mined.t list;
  truncated : bool;
  elapsed_s : float;
}

let log_src = Logs.Src.create "rgs.miner" ~doc:"Repetitive gapped subsequence mining"

module Log = (val Logs.src_log log_src : Logs.LOG)

let describe cfg =
  String.concat ""
    [
      (match cfg.max_gap with
      | Some g -> Printf.sprintf "gap-constrained (<= %d) " g
      | None -> "");
      (match cfg.mode with All -> "all" | Closed -> "closed");
      (match cfg.domains with Some d -> Printf.sprintf ", %d domains" d | None -> "");
      (match cfg.max_length with Some l -> Printf.sprintf ", max_length=%d" l | None -> "");
      (match cfg.max_patterns with Some b -> Printf.sprintf ", max_patterns=%d" b | None -> "");
    ]

let mine_indexed cfg idx =
  (match (cfg.domains, cfg.max_patterns, cfg.max_gap) with
  | Some _, Some _, _ ->
    invalid_arg "Miner: domains cannot be combined with max_patterns"
  | Some _, _, Some _ -> invalid_arg "Miner: domains cannot be combined with max_gap"
  | _ -> ());
  Log.info (fun m -> m "mining %s patterns, min_sup=%d" (describe cfg) cfg.min_sup);
  let start = Unix.gettimeofday () in
  let results, truncated =
    match (cfg.max_gap, cfg.domains, cfg.mode) with
    | Some max_gap, _, _ ->
      let results, stats =
        Gap_constrained.mine ?max_length:cfg.max_length ?max_patterns:cfg.max_patterns
          idx ~max_gap ~min_sup:cfg.min_sup
      in
      (results, stats.Gap_constrained.truncated)
    | None, Some domains, All ->
      let results, stats =
        Parallel_miner.mine_all ~domains ?max_length:cfg.max_length idx
          ~min_sup:cfg.min_sup
      in
      (results, stats.Gsgrow.truncated)
    | None, Some domains, Closed ->
      let results, stats =
        Parallel_miner.mine_closed ~domains ?max_length:cfg.max_length idx
          ~min_sup:cfg.min_sup
      in
      (results, stats.Clogsgrow.truncated)
    | None, None, All ->
      let results, stats =
        Gsgrow.mine ?max_length:cfg.max_length ?max_patterns:cfg.max_patterns idx
          ~min_sup:cfg.min_sup
      in
      (results, stats.Gsgrow.truncated)
    | None, None, Closed ->
      let results, stats =
        Clogsgrow.mine ?max_length:cfg.max_length ?max_patterns:cfg.max_patterns idx
          ~min_sup:cfg.min_sup
      in
      (results, stats.Clogsgrow.truncated)
  in
  let elapsed_s = Unix.gettimeofday () -. start in
  Log.info (fun m ->
      m "found %d pattern(s)%s in %.3fs" (List.length results)
        (if truncated then " (truncated)" else "")
        elapsed_s);
  { results; truncated; elapsed_s }

let mine ?config:cfg ?min_sup db =
  let cfg =
    match (cfg, min_sup) with
    | Some c, _ -> c
    | None, Some min_sup -> config ~min_sup ()
    | None, None -> invalid_arg "Miner.mine: provide ~config or ~min_sup"
  in
  let idx =
    if cfg.paged_index then Inverted_index.build_paged db else Inverted_index.build db
  in
  mine_indexed cfg idx

let landmarks db p = Sup_comp.landmarks (Inverted_index.build db) p
let support db p = Sup_comp.support (Inverted_index.build db) p

let pp_report ?codec ?(limit = 20) ppf report =
  let pp_one =
    match codec with Some c -> Mined.pp_with c | None -> Mined.pp
  in
  let sorted = List.sort Mined.compare_by_support_desc report.results in
  let total = List.length sorted in
  Format.fprintf ppf "@[<v>%d pattern%s%s in %.3fs@," total
    (if total = 1 then "" else "s")
    (if report.truncated then " (truncated)" else "")
    report.elapsed_s;
  List.iteri
    (fun k r -> if k < limit then Format.fprintf ppf "  %a@," pp_one r)
    sorted;
  if total > limit then Format.fprintf ppf "  ... (%d more)@," (total - limit);
  Format.fprintf ppf "@]"
