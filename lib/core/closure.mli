(** Closure checking (Theorem 4) and landmark-border checking (Theorem 5).

    A pattern [P] is non-closed iff some single-event {e extension}
    (Definition 3.4: prepend, insert, or append) has the same repetitive
    support. [CCheck] rules such patterns out of the output on the fly.

    [LBCheck] additionally prunes the whole DFS subtree under [P]: if an
    extension [P'] has equal support {e and} the last landmarks of its
    leftmost support set do not shift right of those of [P]
    (position-wise, in right-shift order), then no pattern with prefix [P]
    is closed. Appended extensions can never satisfy the border condition
    (their last landmark strictly exceeds the matching instance's last
    landmark of [P]), so only prepend/insert extensions are examined for
    pruning. *)

open Rgs_sequence

type verdict = {
  closed : bool;  (** no extension has equal support *)
  prunable : bool;  (** Theorem 5 applies: stop growing [P] *)
}

val check :
  ?event_sets:(Event.t -> Support_set.t) ->
  ?trace:Trace.t ->
  Inverted_index.t ->
  candidate_events:Event.t list ->
  prefix_sets:Support_set.t array ->
  pattern:Pattern.t ->
  support_set:Support_set.t ->
  has_equal_append:bool ->
  verdict
(** [check idx ~candidate_events ~prefix_sets ~pattern ~support_set
    ~has_equal_append] decides closedness and prunability of [pattern].

    [prefix_sets.(j-1)] must be the leftmost support set of the length-[j]
    prefix [e1..ej] (these are exactly the sets on the DFS stack of
    CloGSgrow, so the check costs no extra support-set recomputation for
    prefixes). [support_set] is the leftmost support set of [pattern]
    itself and must equal [prefix_sets.(m-1)]. [has_equal_append] tells the
    check whether some append [P ◦ e] was already found to have equal
    support (CloGSgrow computes all appends anyway while growing).

    Candidate events are filtered internally to those with database
    occurrence count at least [sup(P)] — others cannot yield an
    equal-support extension.

    [event_sets] supplies the size-1 leftmost support sets used as prepend
    bases; pass a memoised function (as CloGSgrow does) to avoid
    re-materialising them at every DFS node. Defaults to
    [Support_set.of_event idx].

    [trace] (default {!Trace.null}) records one [Closure_check] instant per
    call at the [Nodes] level, carrying the verdict (0 closed, 1
    non-closed, 2 LB-prunable). *)

val is_closed : ?events:Event.t list -> Inverted_index.t -> Pattern.t -> bool
(** Standalone Theorem-4 check (Definition 2.6): computes supports of all
    single-event extensions of [P]. [events] defaults to the whole
    alphabet. Intended for tests and one-off queries; the miner uses
    {!check}. *)

val lb_prunable : ?events:Event.t list -> Inverted_index.t -> Pattern.t -> bool
(** Standalone Theorem-5 check. *)
