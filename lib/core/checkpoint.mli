(** Durable checkpoint log for root-partitioned mining runs.

    The DFS forest mined by {!Gsgrow}/{!Clogsgrow} splits into independent
    subtrees, one per frequent size-1 root — the same decomposition
    {!Parallel_miner} exploits. Version 2 of the checkpoint format is an
    {e append-only record log}: a self-describing header (magic, version,
    caller-supplied fingerprint) followed by one CRC32-framed record per
    event — a completed root with its full result list, a quarantined
    root, or the run outcome. Saving after a root finishes appends one
    record, O(that root's results), instead of rewriting the whole file;
    a run killed outright ([kill -9], power loss) loses at most the record
    being appended.

    {!load} {e salvages}: it returns every intact prefix record of a
    truncated or torn log rather than raising, so crash recovery degrades
    record-by-record ({!Metrics.checkpoint_salvaged_roots} counts what was
    recovered from a torn file). [Corrupt] is reserved for files that are
    not usable at all: wrong magic, wrong version, fingerprint mismatch,
    or a header cut short.

    Record payloads use [Marshal] — checkpoints are valid within one build
    of the binary, which is the crash-recovery use case, not an
    interchange format. The CRC32 frame is what makes a torn tail
    detectable {e before} [Marshal] sees it. *)

open Rgs_sequence

type entry = {
  root : Event.t;
  results : Mined.t list;  (** the completed root's full result list *)
}

type quarantine = {
  root : Event.t;
  reason : string;  (** [Printexc.to_string] of the exception, twice fatal *)
  backtrace : string;
}

(** One log record. Later records win per root, so re-mining a quarantined
    root ({!Miner.mine_resumable} with [retry_quarantined]) simply appends
    a superseding [Root_done]. *)
type record =
  | Root_done of entry
  | Root_quarantined of quarantine
  | Run_outcome of Budget.outcome
      (** how the run ended; appended at the end of every run (latest
          wins), so a resumed-then-completed run supersedes the stop
          outcome inherited from its initial image *)

type t = {
  fingerprint : string;
  completed : entry list;  (** in first-logged order *)
  quarantined : quarantine list;
  outcome : Budget.outcome;  (** last [Run_outcome] record, or [Completed] *)
  salvaged_bytes : int;
      (** trailing bytes dropped by the salvaging loader; [0] = clean *)
}

exception Corrupt of string
(** Raised by {!load} on a missing/unreadable file, wrong magic or
    version, a header cut short, or a fingerprint mismatch — {e not} on a
    torn record tail, which is salvaged. *)

val fingerprint : params:string list -> Seqdb.t -> string
(** Digest of the result-defining mining parameters and the database
    contents (via {!Seqdb.content_digest}, so a mapped [.rgsdb] database
    answers O(1) from its sealed digest and text/store runs of one corpus
    share checkpoints). Runtime limits (deadline, node budget) must
    {e not} be part of [params]: resuming with a different budget is the
    point. *)

val load : path:string -> expected_fingerprint:string -> t
(** Salvaging load: every record of the longest intact prefix, folded into
    per-root state ([completed]/[quarantined], later records superseding
    earlier ones for the same root).
    @raise Corrupt as documented on the exception. *)

val load_opt : path:string -> expected_fingerprint:string -> t option
(** [None] when the file does not exist; {!load} otherwise. *)

val records_of : t -> record list
(** A loaded checkpoint as the record list that reproduces it — the
    [?initial] image for {!Writer.create} when resuming. *)

val write :
  ?outcome:Budget.outcome ->
  path:string ->
  fingerprint:string ->
  completed:entry list ->
  quarantined:quarantine list ->
  unit ->
  unit
(** Whole-file convenience: create a writer with all records and close it.
    For incremental per-root saves use {!Writer} directly. *)

val sweep_stale_temps : string -> unit
(** Remove leftover [rgs-ckpt*.tmp] files in a directory — temp files a
    killed process never got to rename. {!Writer.create} calls this for
    the checkpoint's directory before creating its own temp. *)

val crc32 : string -> int
(** The frame checksum (zlib polynomial), exposed for tests and fixture
    generation. *)

(** Incremental appender. Physical writes never raise: each one is
    retried with exponential backoff and deterministic jitter
    ({!Metrics.checkpoint_io_retries}, [Checkpoint_retry] trace instants)
    and then abandoned ({!Metrics.checkpoint_io_failures}) so a full disk
    degrades checkpoint durability, not the mining run. A failed write
    leaves the file flagged dirty; the next attempt first truncates back
    to the last whole record, so a torn tail can never be followed by
    live records the salvaging loader would miss. Every write is fsynced.
    The [Budget.Fault.Checkpoint_io] site fires before each physical
    attempt. [append] is mutex-serialised — pool workers log roots as
    they finish. *)
module Writer : sig
  type w

  val create :
    ?attempts:int ->
    ?backoff_s:float ->
    ?trace:Trace.t ->
    ?initial:record list ->
    path:string ->
    fingerprint:string ->
    unit ->
    w
  (** Atomically replace [path] with a fresh log holding [initial]
      (default empty) via temp-file + rename, keeping the channel open for
      appends; sweeps stale temps first. [attempts] (default 4) bounds the
      tries per physical write; [backoff_s] (default 0.01) is the first
      retry's base delay, doubling per attempt with jitter in
      [0.5x, 1.5x]. On persistent failure the writer is created unhealthy
      and appends are no-ops (the run still mines). *)

  val healthy : w -> bool
  (** The log file is open and the last create/append round succeeded. *)

  val append : w -> record -> unit
  (** Append one CRC32-framed record, retrying as documented; thread-safe. *)

  val close : w -> unit
end
