(** Checkpoint/resume for root-partitioned mining runs.

    The DFS forest mined by {!Gsgrow}/{!Clogsgrow} splits into independent
    subtrees, one per frequent size-1 root — the same decomposition
    {!Parallel_miner} exploits. A checkpoint persists the results of the
    roots completed so far plus the frontier of roots still to mine, so a
    run stopped by a deadline (or killed outright after its last save) can
    resume without redoing finished roots: resumed results equal an
    uninterrupted run's, root by root.

    Files are written atomically (temp file + rename) and carry a magic
    header, a format version, and a caller-supplied fingerprint of the
    mining parameters and database; {!load} refuses anything that does not
    match, so a checkpoint can never silently resume against a different
    database or configuration. Serialization uses [Marshal] — checkpoints
    are valid within one build of the binary, which is the crash-recovery
    use case, not an interchange format. *)

open Rgs_sequence

type entry = {
  root : Event.t;
  results : Mined.t list;  (** the completed root's full result list *)
}

type t = {
  fingerprint : string;
  completed : entry list;  (** in root order *)
  remaining : Event.t list;  (** frontier: roots not yet fully mined *)
  outcome : Budget.outcome;  (** why the checkpointed run stopped *)
}

exception Corrupt of string
(** Raised by {!load} on a missing/garbled file or fingerprint mismatch. *)

val fingerprint : params:string list -> Seqdb.t -> string
(** Digest of the result-defining mining parameters and the database
    contents. Runtime limits (deadline, node budget) must {e not} be part
    of [params]: resuming with a different budget is the point. *)

val save : path:string -> t -> unit
(** Atomic write: the file at [path] is either the previous checkpoint or
    the new one, never a torn mix. *)

val load : path:string -> expected_fingerprint:string -> t
(** @raise Corrupt when the file is unreadable, malformed, from another
    format version, or fingerprinted for different parameters/data. *)

val load_opt : path:string -> expected_fingerprint:string -> t option
(** [None] when the file does not exist; {!load} otherwise. *)
