open Rgs_sequence

type site_kind =
  | Insgrow
  | Worker
  | Checkpoint_io
  | Socket_write
  | Steal
  | Shard_merge

type plan = { id : int; kind : site_kind; trigger : int; persistent : bool }

exception Injected of plan

let kind_name = function
  | Insgrow -> "insgrow"
  | Worker -> "worker"
  | Checkpoint_io -> "checkpoint_io"
  | Socket_write -> "socket_write"
  | Steal -> "steal"
  | Shard_merge -> "shard_merge"

let pp_plan ppf p =
  Format.fprintf ppf "plan %d: %s after %d firing(s), %s" p.id
    (kind_name p.kind) p.trigger
    (if p.persistent then "persistent" else "transient")

(* splitmix64 — the generator must be self-contained (lib/core cannot see
   rgs_datagen) and deterministic across runs, which rules out [Random]'s
   global state. *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

let plans ?(kinds = [ Insgrow; Worker; Checkpoint_io ]) ~seed ~count () =
  if kinds = [] then invalid_arg "Chaos.plans: kinds must be non-empty";
  if count < 0 then invalid_arg "Chaos.plans: count must be >= 0";
  let state = ref (Int64.of_int seed) in
  let kinds = Array.of_list kinds in
  List.init count (fun id ->
      (* cycle kinds so a small sweep still covers every site *)
      let kind = kinds.(id mod Array.length kinds) in
      let trigger = 1 + (splitmix state mod 8) in
      let persistent = splitmix state land 1 = 1 in
      { id; kind; trigger; persistent })

let matches kind site =
  match (kind, site) with
  | Insgrow, Budget.Fault.Insgrow -> true
  | Worker, Budget.Fault.Worker _ -> true
  | Checkpoint_io, Budget.Fault.Checkpoint_io -> true
  | Socket_write, Budget.Fault.Socket_write -> true
  | Steal, Budget.Fault.Steal _ -> true
  | Shard_merge, Budget.Fault.Shard_merge -> true
  | _ -> false

let inject plan f =
  (* pool workers fire sites from several domains at once *)
  let fired = Atomic.make 0 in
  Budget.Fault.with_hook
    (fun site ->
      if matches plan.kind site then begin
        let n = 1 + Atomic.fetch_and_add fired 1 in
        if n = plan.trigger || (plan.persistent && n > plan.trigger) then
          raise (Injected plan)
      end)
    f

(* --- job-level plans (daemon chaos) --- *)

type job_site =
  | Client_disconnect
  | Overlapping_resume
  | Socket_write_fail
  | Kill_mid_drain

type job_plan = { jid : int; site : job_site; delay : int }

let job_site_name = function
  | Client_disconnect -> "client_disconnect"
  | Overlapping_resume -> "overlapping_resume"
  | Socket_write_fail -> "socket_write_fail"
  | Kill_mid_drain -> "kill_mid_drain"

let pp_job_plan ppf p =
  Format.fprintf ppf "job plan %d: %s, delay %d" p.jid (job_site_name p.site)
    p.delay

let job_plans ?(sites = [ Client_disconnect; Overlapping_resume; Socket_write_fail; Kill_mid_drain ])
    ~seed ~count () =
  if sites = [] then invalid_arg "Chaos.job_plans: sites must be non-empty";
  if count < 0 then invalid_arg "Chaos.job_plans: count must be >= 0";
  let state = ref (Int64.of_int seed) in
  let sites = Array.of_list sites in
  List.init count (fun jid ->
      (* cycle sites so a small sweep still covers every failure mode *)
      let site = sites.(jid mod Array.length sites) in
      let delay = 1 + (splitmix state mod 8) in
      { jid; site; delay })

let fault_plan_of_job { jid; site; delay } =
  match site with
  | Socket_write_fail ->
    Some { id = jid; kind = Socket_write; trigger = delay; persistent = false }
  | Client_disconnect | Overlapping_resume | Kill_mid_drain -> None

(* --- process-level plans (supervised shard workers, @supervise tier).

   These faults fire inside a separate worker process, so they travel as
   an environment variable rather than a [Budget.Fault] hook: the
   supervisor serialises a plan with [worker_fault_to_string] into
   [worker_fault_env], and the worker arms it with
   [worker_fault_of_string] at startup. Transient plans are armed only in
   the first incarnation (the supervisor exports the restart generation
   in [worker_restart_env]), so a restart recovers; persistent plans
   re-fire until the restart budget quarantines the shard. *)

type proc_site =
  | Proc_kill  (** [kill -9] self mid-shard (simulates a segfault) *)
  | Proc_hang  (** stop heartbeating and sleep forever *)
  | Proc_corrupt  (** reply with a garbage frame (CRC mismatch) *)
  | Proc_slow  (** delay every reply; liveness must tolerate it *)

type proc_plan = {
  wid : int;
  psite : proc_site;
  after : int;  (** fire on the [after]-th growth request, 1-based *)
  persist : bool;
}

let proc_site_name = function
  | Proc_kill -> "kill"
  | Proc_hang -> "hang"
  | Proc_corrupt -> "corrupt"
  | Proc_slow -> "slow"

let pp_proc_plan ppf p =
  Format.fprintf ppf "proc plan %d: %s after %d grow(s), %s" p.wid
    (proc_site_name p.psite) p.after
    (if p.persist then "persistent" else "transient")

let proc_plans
    ?(sites = [ Proc_kill; Proc_hang; Proc_corrupt; Proc_slow ]) ~seed ~count
    () =
  if sites = [] then invalid_arg "Chaos.proc_plans: sites must be non-empty";
  if count < 0 then invalid_arg "Chaos.proc_plans: count must be >= 0";
  let state = ref (Int64.of_int seed) in
  let sites = Array.of_list sites in
  List.init count (fun wid ->
      (* cycle sites so a small sweep still covers every failure mode *)
      let psite = sites.(wid mod Array.length sites) in
      let after = 1 + (splitmix state mod 4) in
      let persist = splitmix state land 1 = 1 in
      { wid; psite; after; persist })

let worker_fault_env = "RGS_WORKER_FAULT"
let worker_restart_env = "RGS_WORKER_RESTART"

let worker_fault_to_string p =
  Printf.sprintf "%s:%d%s" (proc_site_name p.psite) p.after
    (if p.persist then ":persist" else "")

let proc_site_of_name = function
  | "kill" -> Some Proc_kill
  | "hang" -> Some Proc_hang
  | "corrupt" -> Some Proc_corrupt
  | "slow" -> Some Proc_slow
  | _ -> None

let worker_fault_of_string s =
  let parse name after persist =
    match (proc_site_of_name name, int_of_string_opt after) with
    | Some psite, Some after when after >= 1 -> Some (psite, after, persist)
    | _ -> None
  in
  match String.split_on_char ':' s with
  | [ name; after ] -> parse name after false
  | [ name; after; "persist" ] -> parse name after true
  | _ -> None

(* --- the invariant --- *)

let root_of m = Pattern.get m.Mined.pattern 1

let signature_of m =
  (Pattern.to_list m.Mined.pattern, m.Mined.support)

(* Group a result list by DFS root, preserving each root's pattern order —
   within a root the miners are sequential, so surviving roots must match
   the baseline exactly, order included. *)
let group results =
  let tbl : (Event.t, (Event.t list * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let roots = ref [] in
  List.iter
    (fun m ->
      let r = root_of m in
      match Hashtbl.find_opt tbl r with
      | None ->
        roots := r :: !roots;
        Hashtbl.replace tbl r [ signature_of m ]
      | Some group -> Hashtbl.replace tbl r (signature_of m :: group))
    results;
  Hashtbl.iter (fun r g -> Hashtbl.replace tbl r (List.rev g)) tbl;
  (tbl, List.rev !roots)

let pp_root = Format.pp_print_int

let check_invariant ~baseline ~faulty ~quarantined =
  let base_tbl, base_roots = group baseline in
  let faulty_tbl, faulty_roots = group faulty in
  let invented =
    List.filter (fun r -> not (Hashtbl.mem base_tbl r)) faulty_roots
  in
  match invented with
  | r :: _ ->
    Error
      (Format.asprintf "root %a appears only in the faulty run" pp_root r)
  | [] -> (
    let missing = ref 0 in
    let first_error = ref None in
    List.iter
      (fun r ->
        match Hashtbl.find_opt faulty_tbl r with
        | None -> incr missing
        | Some g ->
          if g <> Hashtbl.find base_tbl r && !first_error = None then
            first_error :=
              Some
                (Format.asprintf
                   "root %a differs from the fault-free run (%d vs %d \
                    pattern(s))"
                   pp_root r (List.length g)
                   (List.length (Hashtbl.find base_tbl r))))
      base_roots;
    match !first_error with
    | Some e -> Error e
    | None ->
      if !missing <> quarantined then
        Error
          (Printf.sprintf
             "%d root(s) missing from the faulty output but %d quarantined"
             !missing quarantined)
      else Ok ())
