open Rgs_sequence

let default_domains () = max 1 (min (Domain.recommended_domain_count ()) 8)
let auto_shards () = max 1 (Domain.recommended_domain_count ())

type 'a root_status =
  | Done of 'a
  | Failed of exn
  | Skipped
  | Quarantined of { exn : exn; backtrace : string }

(* Claim roots from an atomic counter until exhausted; store each root's
   status into its slot. [mine_root] must be thread-compatible: it only
   reads the shared index and writes domain-local state.

   Crash isolation: an exception from [mine_root] (or from the fault hook)
   is captured as [Failed] in that root's slot — it never escapes a worker,
   so [Domain.join] cannot re-raise and the main domain always joins every
   spawned domain, even when its own worker fails. When a completed root
   satisfies [halt_on] (e.g. a shared budget reported a stop) the pool
   stops claiming further roots; unclaimed slots stay [Skipped].

   Scheduling: [order], when given, maps claim slots to root indices, so
   workers pull roots in that order while everything keyed by root — the
   slot array, fault sites, checkpoints, the collected output — is
   untouched by the permutation. The pool's merge is claim-order
   independent, so any [order] yields the identical result; it only moves
   wall-clock around (see [largest_first_order]).

   Observability: each worker samples [Metrics.peak_live_words] for its own
   domain as it exits (OCaml 5 keeps per-domain minor heaps, so the main
   domain's view alone undercounts a parallel run) and, when [trace] is
   live, records its lifecycle as a [Worker] span in its per-domain child
   buffer ([Trace.for_domain] — no cross-domain contention; the buffers are
   read merged after the joins). *)
let run_pool ?(trace = Trace.null) ?(halt_on = fun _ -> false) ?order ~domains
    ~num_roots ~mine_root () =
  (match order with
  | Some o when Array.length o <> num_roots ->
    invalid_arg "Parallel_miner.run_pool: order length <> num_roots"
  | _ -> ());
  let next = Atomic.make 0 in
  let halted = Atomic.make false in
  let halt_reason = Atomic.make None in
  let slots = Array.make num_roots Skipped in
  let worker slot () =
    Metrics.hit Metrics.pool_workers;
    let wtr = Trace.for_domain trace in
    let t0 = Trace.now wtr in
    let claimed = ref 0 in
    let rec loop () =
      if not (Atomic.get halted) then begin
        let k = Atomic.fetch_and_add next 1 in
        if k < num_roots then begin
          let k = match order with None -> k | Some o -> o.(k) in
          incr claimed;
          (match
             Budget.Fault.fire (Budget.Fault.Worker k);
             mine_root k
           with
          | r ->
            slots.(k) <- Done r;
            if halt_on r then Atomic.set halted true
          | exception Budget.Stop reason ->
            (* a shared budget tripped outside the miner's own handler; the
               root is not complete — leave it [Skipped] so a resume can
               re-claim it, but remember why the pool halted *)
            Metrics.hit Metrics.budget_stops;
            Trace.instant wtr Trace.Budget_stop ~a0:(Budget.severity reason)
              ~a1:0;
            Atomic.set halt_reason (Some reason);
            Atomic.set halted true
          | exception e -> slots.(k) <- Failed e);
          loop ()
        end
      end
    in
    (try loop () with _ -> ());
    ignore (Metrics.sample_live_words ());
    Trace.span wtr Trace.Worker ~a0:slot ~a1:!claimed ~start:t0
  in
  let spawned = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun d -> try Domain.join d with _ -> ()) spawned)
    (worker 0);
  (slots, Atomic.get halt_reason)

(* One sequential retry for roots that crashed in the pool, after a short
   backoff (transient failures — an injected once-armed fault, a blip of
   memory pressure — recover); a root that fails its retry too is poison
   and gets quarantined: the exception and backtrace are preserved so a
   checkpoint can record it and a resumed run can skip it instead of
   re-crashing forever. *)
let retry_failed ?(trace = Trace.null) ?(backoff_s = 0.01) ~mine_root slots =
  Array.iteri
    (fun k status ->
      match status with
      | Failed _ -> (
        Metrics.hit Metrics.root_retries;
        Trace.instant trace Trace.Root_retry ~a0:k ~a1:0;
        if backoff_s > 0.0 then Unix.sleepf backoff_s;
        match
          Budget.Fault.fire (Budget.Fault.Worker k);
          mine_root k
        with
        | r -> slots.(k) <- Done r
        | exception e ->
          let backtrace = Printexc.get_backtrace () in
          Metrics.hit Metrics.quarantined_roots;
          Trace.instant trace Trace.Quarantine ~a0:k ~a1:0;
          slots.(k) <- Quarantined { exn = e; backtrace })
      | Done _ | Skipped | Quarantined _ -> ())
    slots;
  slots

let validate ?(domains = default_domains ()) ~min_sup () =
  if min_sup < 1 then invalid_arg "Parallel_miner: min_sup must be >= 1";
  if domains < 1 then invalid_arg "Parallel_miner: domains must be >= 1";
  domains

(* Merge per-root statuses: concatenate surviving results in root order
   (deterministic), fold the stats, and derive the run outcome — the most
   severe of the per-root outcomes, [Worker_failed] dominating when a root
   crashed twice, and [Skipped] slots inheriting the stop reason that
   halted the pool. *)
let collect ?halt_reason ~stats_of ~outcome_of ~with_outcome ~zero slots =
  let stop_reason =
    Array.fold_left
      (fun acc status ->
        match status with
        | Done r -> Budget.combine acc (outcome_of (stats_of r))
        | Failed _ | Quarantined _ -> Budget.combine acc Budget.Worker_failed
        | Skipped -> acc)
      (Option.value halt_reason ~default:Budget.Completed)
      slots
  in
  let outcome =
    if
      Array.exists (function Skipped -> true | _ -> false) slots
      && not (Budget.is_stop stop_reason)
    then (* halted without a recorded reason: treat as cancelled *)
      Budget.Cancelled
    else stop_reason
  in
  let results =
    List.concat_map
      (function Done (rs, _) -> rs | Failed _ | Skipped | Quarantined _ -> [])
      (Array.to_list slots)
  in
  let stats =
    Array.fold_left
      (fun acc -> function Done r -> zero acc (stats_of r) | _ -> acc)
      (with_outcome outcome) slots
  in
  (results, stats)

let halt_on_gsgrow (_, s) = Budget.is_stop s.Gsgrow.outcome
let halt_on_clogsgrow (_, s) = Budget.is_stop s.Clogsgrow.outcome

(* Largest DFS subtrees first. A root's size-1 support (its event's total
   occurrence count) is a cheap proxy for its subtree's mining cost; with
   index-order claiming a heavy root claimed late leaves one domain mining
   alone while the rest idle — the classic LPT scheduling fix. Ties break
   toward the lower index so the permutation is deterministic. *)
let largest_first_order idx roots =
  let n = Array.length roots in
  let weight = Array.map (fun e -> Inverted_index.occurrence_count idx e) roots in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      if weight.(a) <> weight.(b) then compare weight.(b) weight.(a)
      else compare a b)
    order;
  order

let resolve_order schedule idx roots =
  match schedule with
  | `Index -> None
  | `Largest_first -> Some (largest_first_order idx roots)

(* --- work-stealing executor ---------------------------------------- *)

(* One pending unit of DFS work. [t_path] is the list of child ranks from
   the root ([] = the root node itself): task boundaries follow the DFS
   tree, so sorting a root's per-task result lists by path (lexicographic,
   prefix first — exactly OCaml's structural compare on int lists) and
   concatenating reproduces the sequential preorder emission byte for
   byte, whatever domain mined which piece. *)
type steal_task = {
  t_root : int;  (* slot in the roots array *)
  t_path : int list;
  t_node : [ `Root of Event.t | `Frame of Engine.frame ];
}

type steal_worker = {
  w_id : int;
  w_ctx : Engine.ctx;
  w_trace : Trace.t;
  mutable w_claimed : int;
  mutable w_attempts : int;
  mutable w_successes : int;
  mutable w_depth : int;
}

let rec atomic_cons cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (x :: old)) then atomic_cons cell x

(* Shard-parallel mining with dynamic load balancing, replacing the
   root-granular static claiming of [run_pool]. Every worker owns a
   {!Deque}: it claims fresh roots from the shared counter while any
   remain (independent work first, in LPT order), splits shallow nodes
   (pattern length <= [split_len]) into one task per admitted child via
   [Engine.expand] and pushes them bottom-LIFO (so its own pops follow
   DFS order), and mines deeper subtrees whole with [Engine.run_frame].
   A worker that is out of roots and out of local work steals the oldest
   task from a sibling's deque — the largest deferred subtree — so one
   giant root no longer serializes the tail of the run.

   Determinism: results are keyed by (root, path) and stitched in root
   order / path order, so the output is identical to the sequential DFS
   for every schedule; the [@steal] differential suite pins this across
   backends, shard counts and seeds. Queries run through {!Query.shared}
   (thread-safe plans; the top-k floor is a shared atomic, so a stolen
   subtree inherits the current floor).

   Accounting per root mirrors [run_pool]: [pending] counts that root's
   outstanding tasks and the worker that drops it to zero finalizes the
   slot — [Done] with the stitched results, [Failed] when any task
   raised ([failed] keeps the first exception; remaining tasks of that
   root short-circuit), or left [Skipped] when a budget stop aborted a
   task before the subtree completed ([aborted]). Failed roots then take
   the usual [retry_failed] -> quarantine path, re-mined sequentially. *)
let mine_steal ?domains ?max_length ?budget ?(trace = Trace.null) ?shards
    ?(query = Query.All) ?(split_len = 2) ~strategy idx ~min_sup =
  let domains = validate ?domains ~min_sup () in
  let layout =
    Option.map
      (fun n -> Shard_merge.make (Inverted_index.db idx) ~shards:n)
      shards
  in
  let events = Inverted_index.frequent_events idx ~min_sup in
  let roots = Array.of_list events in
  let num_roots = Array.length roots in
  let shared = Query.shared ?max_length ~events ~min_sup query in
  let order = largest_first_order idx roots in
  let deques = Array.init domains (fun _ -> Deque.create ()) in
  let states = Array.make domains None in
  let next = Atomic.make 0 in
  let live = Atomic.make 0 in
  let halted = Atomic.make false in
  let halt_reason = Atomic.make None in
  let pending = Array.init num_roots (fun _ -> Atomic.make 0) in
  let parts = Array.init num_roots (fun _ -> Atomic.make []) in
  let failed = Array.init num_roots (fun _ -> Atomic.make None) in
  let aborted = Array.init num_roots (fun _ -> Atomic.make false) in
  let slots = Array.make num_roots Skipped in
  let finish_root r =
    match Atomic.get failed.(r) with
    | Some e -> slots.(r) <- Failed e
    | None ->
      if not (Atomic.get aborted.(r)) then begin
        let ps =
          List.sort
            (fun (p, _) (q, _) -> compare (p : int list) q)
            (Atomic.get parts.(r))
        in
        slots.(r) <- Done (List.concat_map snd ps)
      end
  in
  let exec ?(stolen = false) st task =
    let r = task.t_root in
    (if Atomic.get failed.(r) <> None || Atomic.get aborted.(r) then ()
     else if Atomic.get halted then Atomic.set aborted.(r) true
     else begin
       let results = ref [] in
       let emit m =
         shared.Query.shared_offer m;
         results := m :: !results
       in
       try
         if stolen then Budget.Fault.fire (Budget.Fault.Steal st.w_id);
         (match task.t_node with
         | `Root _ -> Budget.Fault.fire (Budget.Fault.Worker r)
         | `Frame _ -> ());
         (match
            match task.t_node with
            | `Root e -> Engine.root_frame st.w_ctx e
            | `Frame f -> Some f
          with
         | None -> ()
         | Some f ->
           if Pattern.length (Engine.frame_pattern f) <= split_len then begin
             let children = Array.of_list (Engine.expand st.w_ctx ~emit f) in
             let n = Array.length children in
             if n > 0 then begin
               ignore (Atomic.fetch_and_add pending.(r) n);
               ignore (Atomic.fetch_and_add live n);
               (* reversed, so the owner pops child 0 first (DFS order)
                  and thieves take the last child — order is irrelevant
                  for the output, only for locality *)
               for i = n - 1 downto 0 do
                 Deque.push deques.(st.w_id)
                   {
                     t_root = r;
                     t_path = task.t_path @ [ i ];
                     t_node = `Frame children.(i);
                   }
               done;
               st.w_depth <- max st.w_depth (Deque.size deques.(st.w_id))
             end
           end
           else Engine.run_frame st.w_ctx ~emit f);
         atomic_cons parts.(r) (task.t_path, List.rev !results)
       with
       | Budget.Stop reason ->
         if Atomic.compare_and_set halt_reason None (Some reason) then
           Engine.note_stop st.w_ctx reason;
         Atomic.set halted true;
         Atomic.set aborted.(r) true
       | Engine.Budget_exhausted ->
         (* only reachable once [halted] is set (the ctx's should_stop):
            some other worker already recorded the reason *)
         Atomic.set halted true;
         Atomic.set aborted.(r) true
       | e -> ignore (Atomic.compare_and_set failed.(r) None (Some e))
     end);
    if Atomic.fetch_and_add pending.(r) (-1) = 1 then finish_root r;
    ignore (Atomic.fetch_and_add live (-1))
  in
  let try_steal st =
    let stolen = ref None in
    let i = ref 1 in
    while !stolen = None && !i < domains do
      let v = (st.w_id + !i) mod domains in
      st.w_attempts <- st.w_attempts + 1;
      (match Deque.steal deques.(v) with
      | Deque.Stolen t ->
        st.w_successes <- st.w_successes + 1;
        Trace.instant st.w_trace Trace.Steal ~a0:st.w_id ~a1:v;
        stolen := Some t
      | Deque.Empty | Deque.Retry -> incr i)
    done;
    !stolen
  in
  let worker slot () =
    Metrics.hit Metrics.pool_workers;
    let wtr = Trace.for_domain trace in
    let t0 = Trace.now wtr in
    let wstrategy =
      match layout with
      | None -> strategy
      | Some sm -> Shard_merge.strategy ~trace:wtr sm strategy
    in
    let st =
      {
        w_id = slot;
        w_ctx =
          Engine.make_ctx ?max_length ~events
            ~should_stop:(fun () -> Atomic.get halted)
            ?budget ~trace:wtr ~plan:shared.Query.shared_plan wstrategy idx
            ~min_sup;
        w_trace = wtr;
        w_claimed = 0;
        w_attempts = 0;
        w_successes = 0;
        w_depth = 0;
      }
    in
    states.(slot) <- Some st;
    let rec loop () =
      if not (Atomic.get halted) then
        match Deque.pop deques.(slot) with
        | Some t ->
          exec st t;
          loop ()
        | None ->
          let k = Atomic.fetch_and_add next 1 in
          if k < num_roots then begin
            let k = order.(k) in
            st.w_claimed <- st.w_claimed + 1;
            Atomic.set pending.(k) 1;
            ignore (Atomic.fetch_and_add live 1);
            exec st { t_root = k; t_path = []; t_node = `Root roots.(k) };
            loop ()
          end
          else if Atomic.get live > 0 then begin
            (match try_steal st with
            | Some t -> exec ~stolen:true st t
            | None -> Domain.cpu_relax ());
            loop ()
          end
    in
    (try loop () with _ -> ());
    Metrics.add Metrics.steal_attempts st.w_attempts;
    Metrics.add Metrics.steal_successes st.w_successes;
    Metrics.observe_max Metrics.deque_max_depth st.w_depth;
    ignore (Metrics.sample_live_words ());
    Trace.span wtr Trace.Worker ~a0:slot ~a1:st.w_claimed ~start:t0
  in
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun d -> try Domain.join d with _ -> ()) spawned)
    (worker 0);
  let all_stats =
    ref
      (Array.to_list states
      |> List.filter_map Fun.id
      |> List.map (fun st -> Engine.finish st.w_ctx ~outcome:Budget.Completed)
      )
  in
  let retry_root k =
    let wtr = Trace.for_domain trace in
    let wstrategy =
      match layout with
      | None -> strategy
      | Some sm -> Shard_merge.strategy ~trace:wtr sm strategy
    in
    let ctx =
      Engine.make_ctx ?max_length ~events ?budget ~trace:wtr
        ~plan:shared.Query.shared_plan wstrategy idx ~min_sup
    in
    let results = ref [] in
    let emit m =
      shared.Query.shared_offer m;
      results := m :: !results
    in
    (match Engine.root_frame ctx roots.(k) with
    | None -> ()
    | Some f -> Engine.run_frame ctx ~emit f);
    all_stats := Engine.finish ctx ~outcome:Budget.Completed :: !all_stats;
    List.rev !results
  in
  let slots = retry_failed ~trace ~mine_root:retry_root slots in
  let halt_reason = Atomic.get halt_reason in
  let stop_reason =
    Array.fold_left
      (fun acc status ->
        match status with
        | Failed _ | Quarantined _ -> Budget.combine acc Budget.Worker_failed
        | Done _ | Skipped -> acc)
      (Option.value halt_reason ~default:Budget.Completed)
      slots
  in
  let outcome =
    if
      Array.exists (function Skipped -> true | _ -> false) slots
      && not (Budget.is_stop stop_reason)
    then Budget.Cancelled
    else stop_reason
  in
  let quarantined =
    Array.fold_left
      (fun n -> function Quarantined _ -> n + 1 | _ -> n)
      0 slots
  in
  let results =
    List.concat_map
      (function Done rs -> rs | Failed _ | Skipped | Quarantined _ -> [])
      (Array.to_list slots)
  in
  let results = shared.Query.finalize results in
  let stats =
    List.fold_left
      (fun acc (s : Engine.stats) ->
        {
          acc with
          Engine.emitted = acc.Engine.emitted + s.Engine.emitted;
          dfs_nodes = acc.Engine.dfs_nodes + s.Engine.dfs_nodes;
          insgrow_calls = acc.Engine.insgrow_calls + s.Engine.insgrow_calls;
          lb_pruned = acc.Engine.lb_pruned + s.Engine.lb_pruned;
          non_closed_dropped =
            acc.Engine.non_closed_dropped + s.Engine.non_closed_dropped;
          query_cuts = acc.Engine.query_cuts + s.Engine.query_cuts;
          floor_prunes = acc.Engine.floor_prunes + s.Engine.floor_prunes;
        })
      {
        Engine.emitted = 0;
        dfs_nodes = 0;
        insgrow_calls = 0;
        lb_pruned = 0;
        non_closed_dropped = 0;
        query_cuts = 0;
        floor_prunes = 0;
        truncated = Budget.is_stop outcome;
        outcome;
      }
      !all_stats
  in
  (results, stats, quarantined)

let shard_layout ?dispatch idx shards =
  Option.map
    (fun n -> Shard_merge.make ?dispatch (Inverted_index.db idx) ~shards:n)
    shards

let mine_all ?domains ?max_length ?budget ?(trace = Trace.null)
    ?(schedule = `Largest_first) ?(steal = false) ?shards ?shard_dispatch idx
    ~min_sup =
  if steal then begin
    let results, s, _quarantined =
      mine_steal ?domains ?max_length ?budget ~trace ?shards
        ~strategy:Gsgrow.strategy idx ~min_sup
    in
    ( results,
      {
        Gsgrow.patterns = s.Engine.emitted;
        insgrow_calls = s.Engine.insgrow_calls;
        truncated = s.Engine.truncated;
        outcome = s.Engine.outcome;
      } )
  end
  else begin
  let domains = validate ?domains ~min_sup () in
  let sm = shard_layout ?dispatch:shard_dispatch idx shards in
  let events = Inverted_index.frequent_events idx ~min_sup in
  let roots = Array.of_list events in
  let mine_root k =
    Gsgrow.mine ?max_length ?budget ~trace:(Trace.for_domain trace) ?shards:sm
      ~events ~roots:[ roots.(k) ] idx ~min_sup
  in
  let slots, halt_reason =
    run_pool ~trace ~halt_on:halt_on_gsgrow
      ?order:(resolve_order schedule idx roots) ~domains
      ~num_roots:(Array.length roots) ~mine_root ()
  in
  let slots = retry_failed ~trace ~mine_root slots in
  collect slots ?halt_reason
    ~stats_of:(fun (_, s) -> s)
    ~outcome_of:(fun s -> s.Gsgrow.outcome)
    ~with_outcome:(fun outcome ->
      {
        Gsgrow.patterns = 0;
        insgrow_calls = 0;
        truncated = Budget.is_stop outcome;
        outcome;
      })
    ~zero:(fun acc s ->
      {
        acc with
        Gsgrow.patterns = acc.Gsgrow.patterns + s.Gsgrow.patterns;
        insgrow_calls = acc.Gsgrow.insgrow_calls + s.Gsgrow.insgrow_calls;
      })
  end

let mine_closed ?domains ?max_length ?use_lb_check ?budget ?(trace = Trace.null)
    ?(schedule = `Largest_first) ?(steal = false) ?shards ?shard_dispatch idx
    ~min_sup =
  if steal then begin
    let strategy =
      Clogsgrow.strategy
        ~use_lb_check:(Option.value use_lb_check ~default:true)
        ~use_c_check:true
    in
    let results, s, _quarantined =
      mine_steal ?domains ?max_length ?budget ~trace ?shards ~strategy idx
        ~min_sup
    in
    ( results,
      {
        Clogsgrow.patterns = s.Engine.emitted;
        dfs_nodes = s.Engine.dfs_nodes;
        insgrow_calls = s.Engine.insgrow_calls;
        lb_pruned = s.Engine.lb_pruned;
        non_closed_dropped = s.Engine.non_closed_dropped;
        truncated = s.Engine.truncated;
        outcome = s.Engine.outcome;
      } )
  end
  else begin
  let domains = validate ?domains ~min_sup () in
  let sm = shard_layout ?dispatch:shard_dispatch idx shards in
  let events = Inverted_index.frequent_events idx ~min_sup in
  let roots = Array.of_list events in
  let mine_root k =
    Clogsgrow.mine ?max_length ?use_lb_check ?budget
      ~trace:(Trace.for_domain trace) ?shards:sm ~events ~roots:[ roots.(k) ]
      idx ~min_sup
  in
  let slots, halt_reason =
    run_pool ~trace ~halt_on:halt_on_clogsgrow
      ?order:(resolve_order schedule idx roots) ~domains
      ~num_roots:(Array.length roots) ~mine_root ()
  in
  let slots = retry_failed ~trace ~mine_root slots in
  collect slots ?halt_reason
    ~stats_of:(fun (_, s) -> s)
    ~outcome_of:(fun s -> s.Clogsgrow.outcome)
    ~with_outcome:(fun outcome ->
      {
        Clogsgrow.patterns = 0;
        dfs_nodes = 0;
        insgrow_calls = 0;
        lb_pruned = 0;
        non_closed_dropped = 0;
        truncated = Budget.is_stop outcome;
        outcome;
      })
    ~zero:(fun acc s ->
      {
        acc with
        Clogsgrow.patterns = acc.Clogsgrow.patterns + s.Clogsgrow.patterns;
        dfs_nodes = acc.Clogsgrow.dfs_nodes + s.Clogsgrow.dfs_nodes;
        insgrow_calls = acc.Clogsgrow.insgrow_calls + s.Clogsgrow.insgrow_calls;
        lb_pruned = acc.Clogsgrow.lb_pruned + s.Clogsgrow.lb_pruned;
        non_closed_dropped =
          acc.Clogsgrow.non_closed_dropped + s.Clogsgrow.non_closed_dropped;
      })
  end
