open Rgs_sequence

let default_domains () = max 1 (min (Domain.recommended_domain_count ()) 8)

(* Claim roots from an atomic counter until exhausted; store each root's
   result list into its slot. [mine_root] must be thread-compatible: it
   only reads the shared index and writes domain-local state. *)
let run_pool ~domains ~num_roots ~mine_root =
  let next = Atomic.make 0 in
  let slots = Array.make num_roots None in
  let worker () =
    let rec loop () =
      let k = Atomic.fetch_and_add next 1 in
      if k < num_roots then begin
        slots.(k) <- Some (mine_root k);
        loop ()
      end
    in
    loop ()
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Array.map
    (function
      | Some r -> r
      | None -> assert false (* every slot below [next >= num_roots] is filled *))
    slots

let validate ?(domains = default_domains ()) ~min_sup () =
  if min_sup < 1 then invalid_arg "Parallel_miner: min_sup must be >= 1";
  if domains < 1 then invalid_arg "Parallel_miner: domains must be >= 1";
  domains

let mine_all ?domains ?max_length idx ~min_sup =
  let domains = validate ?domains ~min_sup () in
  let events = Inverted_index.frequent_events idx ~min_sup in
  let roots = Array.of_list events in
  let mine_root k =
    Gsgrow.mine ?max_length ~events ~roots:[ roots.(k) ] idx ~min_sup
  in
  let per_root = run_pool ~domains ~num_roots:(Array.length roots) ~mine_root in
  let results = List.concat_map fst (Array.to_list per_root) in
  let stats =
    Array.fold_left
      (fun acc (_, s) ->
        {
          Gsgrow.patterns = acc.Gsgrow.patterns + s.Gsgrow.patterns;
          insgrow_calls = acc.Gsgrow.insgrow_calls + s.Gsgrow.insgrow_calls;
          truncated = acc.Gsgrow.truncated || s.Gsgrow.truncated;
        })
      { Gsgrow.patterns = 0; insgrow_calls = 0; truncated = false }
      per_root
  in
  (results, stats)

let mine_closed ?domains ?max_length ?use_lb_check idx ~min_sup =
  let domains = validate ?domains ~min_sup () in
  let events = Inverted_index.frequent_events idx ~min_sup in
  let roots = Array.of_list events in
  let mine_root k =
    Clogsgrow.mine ?max_length ?use_lb_check ~events ~roots:[ roots.(k) ] idx ~min_sup
  in
  let per_root = run_pool ~domains ~num_roots:(Array.length roots) ~mine_root in
  let results = List.concat_map fst (Array.to_list per_root) in
  let stats =
    Array.fold_left
      (fun acc (_, s) ->
        {
          Clogsgrow.patterns = acc.Clogsgrow.patterns + s.Clogsgrow.patterns;
          dfs_nodes = acc.Clogsgrow.dfs_nodes + s.Clogsgrow.dfs_nodes;
          insgrow_calls = acc.Clogsgrow.insgrow_calls + s.Clogsgrow.insgrow_calls;
          lb_pruned = acc.Clogsgrow.lb_pruned + s.Clogsgrow.lb_pruned;
          non_closed_dropped =
            acc.Clogsgrow.non_closed_dropped + s.Clogsgrow.non_closed_dropped;
          truncated = acc.Clogsgrow.truncated || s.Clogsgrow.truncated;
        })
      {
        Clogsgrow.patterns = 0;
        dfs_nodes = 0;
        insgrow_calls = 0;
        lb_pruned = 0;
        non_closed_dropped = 0;
        truncated = false;
      }
      per_root
  in
  (results, stats)
