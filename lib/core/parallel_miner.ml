open Rgs_sequence

let default_domains () = max 1 (min (Domain.recommended_domain_count ()) 8)

type 'a root_status =
  | Done of 'a
  | Failed of exn
  | Skipped
  | Quarantined of { exn : exn; backtrace : string }

(* Claim roots from an atomic counter until exhausted; store each root's
   status into its slot. [mine_root] must be thread-compatible: it only
   reads the shared index and writes domain-local state.

   Crash isolation: an exception from [mine_root] (or from the fault hook)
   is captured as [Failed] in that root's slot — it never escapes a worker,
   so [Domain.join] cannot re-raise and the main domain always joins every
   spawned domain, even when its own worker fails. When a completed root
   satisfies [halt_on] (e.g. a shared budget reported a stop) the pool
   stops claiming further roots; unclaimed slots stay [Skipped].

   Scheduling: [order], when given, maps claim slots to root indices, so
   workers pull roots in that order while everything keyed by root — the
   slot array, fault sites, checkpoints, the collected output — is
   untouched by the permutation. The pool's merge is claim-order
   independent, so any [order] yields the identical result; it only moves
   wall-clock around (see [largest_first_order]).

   Observability: each worker samples [Metrics.peak_live_words] for its own
   domain as it exits (OCaml 5 keeps per-domain minor heaps, so the main
   domain's view alone undercounts a parallel run) and, when [trace] is
   live, records its lifecycle as a [Worker] span in its per-domain child
   buffer ([Trace.for_domain] — no cross-domain contention; the buffers are
   read merged after the joins). *)
let run_pool ?(trace = Trace.null) ?(halt_on = fun _ -> false) ?order ~domains
    ~num_roots ~mine_root () =
  (match order with
  | Some o when Array.length o <> num_roots ->
    invalid_arg "Parallel_miner.run_pool: order length <> num_roots"
  | _ -> ());
  let next = Atomic.make 0 in
  let halted = Atomic.make false in
  let halt_reason = Atomic.make None in
  let slots = Array.make num_roots Skipped in
  let worker slot () =
    Metrics.hit Metrics.pool_workers;
    let wtr = Trace.for_domain trace in
    let t0 = Trace.now wtr in
    let claimed = ref 0 in
    let rec loop () =
      if not (Atomic.get halted) then begin
        let k = Atomic.fetch_and_add next 1 in
        if k < num_roots then begin
          let k = match order with None -> k | Some o -> o.(k) in
          incr claimed;
          (match
             Budget.Fault.fire (Budget.Fault.Worker k);
             mine_root k
           with
          | r ->
            slots.(k) <- Done r;
            if halt_on r then Atomic.set halted true
          | exception Budget.Stop reason ->
            (* a shared budget tripped outside the miner's own handler; the
               root is not complete — leave it [Skipped] so a resume can
               re-claim it, but remember why the pool halted *)
            Metrics.hit Metrics.budget_stops;
            Trace.instant wtr Trace.Budget_stop ~a0:(Budget.severity reason)
              ~a1:0;
            Atomic.set halt_reason (Some reason);
            Atomic.set halted true
          | exception e -> slots.(k) <- Failed e);
          loop ()
        end
      end
    in
    (try loop () with _ -> ());
    ignore (Metrics.sample_live_words ());
    Trace.span wtr Trace.Worker ~a0:slot ~a1:!claimed ~start:t0
  in
  let spawned = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun d -> try Domain.join d with _ -> ()) spawned)
    (worker 0);
  (slots, Atomic.get halt_reason)

(* One sequential retry for roots that crashed in the pool, after a short
   backoff (transient failures — an injected once-armed fault, a blip of
   memory pressure — recover); a root that fails its retry too is poison
   and gets quarantined: the exception and backtrace are preserved so a
   checkpoint can record it and a resumed run can skip it instead of
   re-crashing forever. *)
let retry_failed ?(trace = Trace.null) ?(backoff_s = 0.01) ~mine_root slots =
  Array.iteri
    (fun k status ->
      match status with
      | Failed _ -> (
        Metrics.hit Metrics.root_retries;
        Trace.instant trace Trace.Root_retry ~a0:k ~a1:0;
        if backoff_s > 0.0 then Unix.sleepf backoff_s;
        match
          Budget.Fault.fire (Budget.Fault.Worker k);
          mine_root k
        with
        | r -> slots.(k) <- Done r
        | exception e ->
          let backtrace = Printexc.get_backtrace () in
          Metrics.hit Metrics.quarantined_roots;
          Trace.instant trace Trace.Quarantine ~a0:k ~a1:0;
          slots.(k) <- Quarantined { exn = e; backtrace })
      | Done _ | Skipped | Quarantined _ -> ())
    slots;
  slots

let validate ?(domains = default_domains ()) ~min_sup () =
  if min_sup < 1 then invalid_arg "Parallel_miner: min_sup must be >= 1";
  if domains < 1 then invalid_arg "Parallel_miner: domains must be >= 1";
  domains

(* Merge per-root statuses: concatenate surviving results in root order
   (deterministic), fold the stats, and derive the run outcome — the most
   severe of the per-root outcomes, [Worker_failed] dominating when a root
   crashed twice, and [Skipped] slots inheriting the stop reason that
   halted the pool. *)
let collect ?halt_reason ~stats_of ~outcome_of ~with_outcome ~zero slots =
  let stop_reason =
    Array.fold_left
      (fun acc status ->
        match status with
        | Done r -> Budget.combine acc (outcome_of (stats_of r))
        | Failed _ | Quarantined _ -> Budget.combine acc Budget.Worker_failed
        | Skipped -> acc)
      (Option.value halt_reason ~default:Budget.Completed)
      slots
  in
  let outcome =
    if
      Array.exists (function Skipped -> true | _ -> false) slots
      && not (Budget.is_stop stop_reason)
    then (* halted without a recorded reason: treat as cancelled *)
      Budget.Cancelled
    else stop_reason
  in
  let results =
    List.concat_map
      (function Done (rs, _) -> rs | Failed _ | Skipped | Quarantined _ -> [])
      (Array.to_list slots)
  in
  let stats =
    Array.fold_left
      (fun acc -> function Done r -> zero acc (stats_of r) | _ -> acc)
      (with_outcome outcome) slots
  in
  (results, stats)

let halt_on_gsgrow (_, s) = Budget.is_stop s.Gsgrow.outcome
let halt_on_clogsgrow (_, s) = Budget.is_stop s.Clogsgrow.outcome

(* Largest DFS subtrees first. A root's size-1 support (its event's total
   occurrence count) is a cheap proxy for its subtree's mining cost; with
   index-order claiming a heavy root claimed late leaves one domain mining
   alone while the rest idle — the classic LPT scheduling fix. Ties break
   toward the lower index so the permutation is deterministic. *)
let largest_first_order idx roots =
  let n = Array.length roots in
  let weight = Array.map (fun e -> Inverted_index.occurrence_count idx e) roots in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      if weight.(a) <> weight.(b) then compare weight.(b) weight.(a)
      else compare a b)
    order;
  order

let resolve_order schedule idx roots =
  match schedule with
  | `Index -> None
  | `Largest_first -> Some (largest_first_order idx roots)

let mine_all ?domains ?max_length ?budget ?(trace = Trace.null)
    ?(schedule = `Largest_first) idx ~min_sup =
  let domains = validate ?domains ~min_sup () in
  let events = Inverted_index.frequent_events idx ~min_sup in
  let roots = Array.of_list events in
  let mine_root k =
    Gsgrow.mine ?max_length ?budget ~trace:(Trace.for_domain trace) ~events
      ~roots:[ roots.(k) ] idx ~min_sup
  in
  let slots, halt_reason =
    run_pool ~trace ~halt_on:halt_on_gsgrow
      ?order:(resolve_order schedule idx roots) ~domains
      ~num_roots:(Array.length roots) ~mine_root ()
  in
  let slots = retry_failed ~trace ~mine_root slots in
  collect slots ?halt_reason
    ~stats_of:(fun (_, s) -> s)
    ~outcome_of:(fun s -> s.Gsgrow.outcome)
    ~with_outcome:(fun outcome ->
      {
        Gsgrow.patterns = 0;
        insgrow_calls = 0;
        truncated = Budget.is_stop outcome;
        outcome;
      })
    ~zero:(fun acc s ->
      {
        acc with
        Gsgrow.patterns = acc.Gsgrow.patterns + s.Gsgrow.patterns;
        insgrow_calls = acc.Gsgrow.insgrow_calls + s.Gsgrow.insgrow_calls;
      })

let mine_closed ?domains ?max_length ?use_lb_check ?budget ?(trace = Trace.null)
    ?(schedule = `Largest_first) idx ~min_sup =
  let domains = validate ?domains ~min_sup () in
  let events = Inverted_index.frequent_events idx ~min_sup in
  let roots = Array.of_list events in
  let mine_root k =
    Clogsgrow.mine ?max_length ?use_lb_check ?budget
      ~trace:(Trace.for_domain trace) ~events ~roots:[ roots.(k) ] idx ~min_sup
  in
  let slots, halt_reason =
    run_pool ~trace ~halt_on:halt_on_clogsgrow
      ?order:(resolve_order schedule idx roots) ~domains
      ~num_roots:(Array.length roots) ~mine_root ()
  in
  let slots = retry_failed ~trace ~mine_root slots in
  collect slots ?halt_reason
    ~stats_of:(fun (_, s) -> s)
    ~outcome_of:(fun s -> s.Clogsgrow.outcome)
    ~with_outcome:(fun outcome ->
      {
        Clogsgrow.patterns = 0;
        dfs_nodes = 0;
        insgrow_calls = 0;
        lb_pruned = 0;
        non_closed_dropped = 0;
        truncated = Budget.is_stop outcome;
        outcome;
      })
    ~zero:(fun acc s ->
      {
        acc with
        Clogsgrow.patterns = acc.Clogsgrow.patterns + s.Clogsgrow.patterns;
        dfs_nodes = acc.Clogsgrow.dfs_nodes + s.Clogsgrow.dfs_nodes;
        insgrow_calls = acc.Clogsgrow.insgrow_calls + s.Clogsgrow.insgrow_calls;
        lb_pruned = acc.Clogsgrow.lb_pruned + s.Clogsgrow.lb_pruned;
        non_closed_dropped =
          acc.Clogsgrow.non_closed_dropped + s.Clogsgrow.non_closed_dropped;
      })
