(** Repetitive support computation — Algorithm 1 ([supComp]).

    Couples pattern growth with instance growth: starting from the leftmost
    support set of [e1], repeatedly applies [INSgrow] to obtain the leftmost
    support set of [e1..ej] for [j = 2..m] (Theorem 2). The result size is
    the repetitive support [sup(P)] of Definition 2.5, computed in
    [O(m · sup(e1) · log L)]. *)

open Rgs_sequence

val support_set : Inverted_index.t -> Pattern.t -> Support_set.t
(** The leftmost support set of [P] in compressed form. The empty pattern
    has the empty support set. *)

val support : Inverted_index.t -> Pattern.t -> int
(** [sup(P)] — the size of the leftmost support set. *)

val landmarks : Inverted_index.t -> Pattern.t -> Instance.full list
(** The leftmost support set with full landmarks, in right-shift order,
    recomputed from scratch. *)

val reconstruct :
  Inverted_index.t -> Pattern.t -> Support_set.t -> Instance.full list
(** Reconstructs full landmarks from a compressed leftmost support set —
    the operation Section III-D states "can be constructed from these
    triples. Details are omitted here." Starting from each instance's
    stored first position, the intermediate positions are re-derived by
    replaying instance growth within each sequence; the replayed last
    positions provably coincide with the stored ones (asserted). Cheaper
    than {!landmarks} when the support set is much smaller than the
    occurrence list of the pattern's first event.
    @raise Invalid_argument when [set] is not a leftmost support set of
    [p] in the index's database. *)

val grow_from :
  Inverted_index.t -> Support_set.t -> Pattern.t -> Support_set.t
(** [grow_from idx i q] extends a leftmost support set [I] of some pattern
    [P] into the leftmost support set of [P ◦ Q] by folding [INSgrow] over
    the events of [Q]. Used by the closure checks to grow an extended prefix
    back to a full extended pattern. *)

val grow_from_until :
  Inverted_index.t -> Support_set.t -> Pattern.t -> min_size:int -> Support_set.t option
(** As {!grow_from} but aborts with [None] as soon as the intermediate
    support drops below [min_size] — support sets only shrink under growth
    (Lemma 1), so the final support cannot reach [min_size] anymore. Used to
    cut off closure-check extension growth early. *)
