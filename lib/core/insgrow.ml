open Rgs_sequence

let run = Support_set.grow

let full_of_event idx e =
  let db = Inverted_index.db idx in
  let out = ref [] in
  for i = Seqdb.size db downto 1 do
    let positions = Inverted_index.positions idx ~seq:i e in
    for k = Array.length positions - 1 downto 0 do
      out := { Instance.fseq = i; landmark = [| positions.(k) |] } :: !out
    done
  done;
  !out

(* Same control flow as Support_set.grow, on full landmarks. The input list
   is grouped by sequence in right-shift order, so a plain left-to-right scan
   with per-sequence [last_position] state implements lines 1-7 of
   Algorithm 2. The lowest bound [max last_position last] is nondecreasing
   within a sequence run, so one reseatable monotone cursor serves the whole
   pass — same fast path as the compressed grow. *)
let run_full idx insts e =
  Metrics.hit Metrics.full_insgrow_calls;
  match insts with
  | [] -> []
  | first :: _ ->
    let out = ref [] in
    let current_seq = ref first.Instance.fseq in
    let last_position = ref 0 in
    let dead = ref false in
    let c = Inverted_index.cursor idx ~seq:!current_seq e in
    List.iter
      (fun (f : Instance.full) ->
        if f.Instance.fseq <> !current_seq then begin
          current_seq := f.Instance.fseq;
          last_position := 0;
          dead := false;
          Inverted_index.reseat c ~seq:!current_seq
        end;
        if not !dead then begin
          let n = Array.length f.Instance.landmark in
          let last = f.Instance.landmark.(n - 1) in
          let lj =
            Inverted_index.seek_pos c ~lowest:(max !last_position last)
          in
          if lj < 0 then dead := true
          else begin
            last_position := lj;
            let landmark = Array.make (n + 1) lj in
            Array.blit f.Instance.landmark 0 landmark 0 n;
            out := { f with Instance.landmark } :: !out
          end
        end)
      insts;
    Inverted_index.cursor_finish c;
    List.rev !out
