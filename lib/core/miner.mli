(** High-level mining facade.

    One-call API over {!Gsgrow} / {!Clogsgrow} / {!Gap_constrained} /
    {!Parallel_miner}: build the inverted index, mine, and present
    results. This is the entry point example programs and the CLI use; the
    per-algorithm modules remain available for finer control.

    Resilience: a config may carry runtime limits (wall-clock deadline,
    DFS-node budget, GC heap-words ceiling). The miners stop cooperatively
    when a limit is hit and the report always carries the patterns mined so
    far plus an explicit {!Budget.outcome}. {!mine_resumable} additionally
    checkpoints completed DFS roots to disk so a stopped run can resume
    without redoing them. *)

open Rgs_sequence

type mode =
  | All  (** GSgrow: every frequent pattern *)
  | Closed  (** CloGSgrow: closed frequent patterns only *)

type config = {
  min_sup : int;
  mode : mode;
  query : Query.t;
      (** answer mode, pruned inside the DFS ({!Query}): everything
          (default), only patterns containing a target subsequence, or the
          k best by support. [Targeted] answers keep DFS order; [Top_k]
          answers come support-descending, with equal-support ties at the
          [k] boundary resolved deterministically but entry-point
          specifically (first DFS arrival in {!mine_indexed}, smallest by
          {!Mined.compare_by_support_desc} in {!mine_resumable}) *)
  max_length : int option;  (** bound on pattern length *)
  max_patterns : int option;  (** output budget; truncates the DFS *)
  max_gap : int option;
      (** gap-constrained mining ({!Gap_constrained}): sound greedy lower
          bound, mines all patterns — [mode] is ignored *)
  domains : int option;
      (** mine in parallel with this many domains ({!Parallel_miner});
          incompatible with [max_patterns], and with [max_gap] unless
          [steal] is set *)
  shards : int option;
      (** run every instance growth shard-by-shard over this many balanced
          database shards and merge ({!Shard_merge}) — output identical by
          construction, in every mode including checkpoint/resume *)
  shard_dispatch : Shard_merge.dispatch option;
      (** how the per-shard grown parts are computed: [None] (default)
          computes them in-process; a supervisor ([Rgs_server.Supervisor])
          supplies a closure that ships slices to isolated worker
          processes, falling back in-process per shard on failure —
          output identical either way. Requires [shards]; incompatible
          with [steal] (the stealing executor re-splits subtrees across
          domains, a different axis of parallelism) *)
  steal : bool;
      (** use the work-stealing executor ({!Parallel_miner.mine_steal}):
          dynamic DFS-subtree balancing instead of static per-root
          claiming, same output. Requires [domains]; supports any [query]
          and [max_gap], but not [max_patterns] or checkpointing *)
  paged_index : bool;  (** build the B-tree index backend instead of arrays *)
  index_kind : Inverted_index.kind option;
      (** explicit index backend selection; overrides [paged_index] when
          set. [None] keeps the default (CSR, or paged via
          [paged_index]) *)
  deadline_s : float option;
      (** wall-clock budget in seconds; on expiry the run stops with
          [Deadline_exceeded] and partial results *)
  max_nodes : int option;
      (** DFS-node budget; on exhaustion the run stops with [Truncated] *)
  max_words : int option;
      (** GC heap-words ceiling; on excess the run stops with
          [Memory_limit] *)
}

val config :
  ?mode:mode ->
  ?query:Query.t ->
  ?max_length:int ->
  ?max_patterns:int ->
  ?max_gap:int ->
  ?domains:int ->
  ?shards:int ->
  ?shard_dispatch:Shard_merge.dispatch ->
  ?steal:bool ->
  ?paged_index:bool ->
  ?index_kind:Inverted_index.kind ->
  ?deadline_s:float ->
  ?max_nodes:int ->
  ?max_words:int ->
  min_sup:int ->
  unit ->
  config
(** Defaults: [mode = Closed], [query = All], array index, sequential,
    unsharded, no stealing, no bounds.
    @raise Invalid_argument when [min_sup < 1], a limit is negative, the
    query is invalid ({!Query.validate}), a top-k query is combined with
    [max_patterns], [shards < 1], [shard_dispatch] is given without
    [shards] or with [steal], or [steal] is set without [domains] or
    with [max_patterns]. *)

type report = {
  results : Mined.t list;  (** in DFS order *)
  truncated : bool;  (** [true] iff [outcome <> Completed] *)
  outcome : Budget.outcome;  (** why the run ended *)
  elapsed_s : float;
  quarantined : int;
      (** poison roots excluded from [results]: quarantined this run after
          crashing twice, or skipped on resume because a prior run
          quarantined them. Always [0] outside {!mine_resumable}. *)
}

val mine : ?config:config -> ?min_sup:int -> ?trace:Trace.t -> Seqdb.t -> report
(** Mines [db]. Pass either a full [config] or just [min_sup] (with the
    defaults of {!config}). A live [trace] (default {!Trace.null}) records
    the run's DFS spans and instants — see {!Trace}.
    @raise Invalid_argument when neither [config] nor [min_sup] is given,
    when [min_sup < 1], or when [domains] is combined with [max_patterns],
    [max_gap] or a non-[All] query (queried parallel mining goes through
    {!mine_resumable}, whose root partitioning composes with query
    plans). *)

val mine_indexed : ?trace:Trace.t -> config -> Inverted_index.t -> report
(** As {!mine} on a prebuilt index (amortises index construction across
    parameter sweeps; [config.paged_index] is ignored). *)

val mine_resumable :
  ?budget:Budget.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?retry_quarantined:bool ->
  ?trace:Trace.t ->
  config ->
  Seqdb.t ->
  report
(** Root-partitioned mining with durable checkpoint/resume. Roots
    (frequent size-1 patterns) are mined independently — sequentially, or
    with [config.domains] pool workers; a crashing root is retried once
    (with backoff) and, if it crashes again, {e quarantined}: its patterns
    are missing from [results] ([Worker_failed] outcome,
    [report.quarantined] counts it) and the checkpoint records it so a
    resumed run skips it instead of re-crashing. Pass
    [retry_quarantined:true] to put previously quarantined roots back on
    the frontier (e.g. after fixing the cause) — a successful re-mine
    appends a superseding record.

    With [checkpoint:path], the log at [path] gains one record {e per
    completed root, as it completes} ({!Checkpoint.Writer}) — a run killed
    outright loses at most the record being appended — plus quarantine
    records and a final {!Checkpoint.Run_outcome}. With [resume:true] a
    matching checkpoint is loaded first (salvaging a torn tail) and only
    the remaining roots are mined, so the finished report equals an
    uninterrupted run's. A checkpoint written for a different database,
    [min_sup], [mode], [max_length] or [query] is rejected
    ({!Checkpoint.Corrupt}); checkpoints that predate queries resume
    cleanly under [query = All], whose fingerprint is unchanged.
    Runtime limits may differ between the original and the resumed run.
    Checkpoint appends are recorded into [trace] as [Checkpoint_write]
    spans ([a0] = completed roots, [a1] = remaining); I/O failures degrade
    gracefully (see {!Checkpoint.Writer}) rather than killing the run.

    When {!Budget.install_signal_handlers} has been called, a limitless
    cooperative budget is created even without configured limits, so
    SIGINT/SIGTERM stop the run with [Interrupted] after the final
    checkpoint records are appended.

    An explicit [budget] overrides the config-derived one entirely (the
    config's [deadline_s]/[max_nodes]/[max_words] are ignored): the caller
    owns the limits and may {!Budget.cancel} from another domain — this is
    how the daemon ({!Rgs_server}) cancels a job whose client vanished.

    @raise Invalid_argument with [max_gap] or [max_patterns] (those paths
    are not root-partitioned), or when [resume] is set without
    [checkpoint]. *)

val landmarks : Seqdb.t -> Pattern.t -> Instance.full list
(** Full-landmark leftmost support set of a pattern, for displaying where
    instances occur. *)

val support : Seqdb.t -> Pattern.t -> int
(** One-off repetitive support query. *)

val pp_report : ?codec:Codec.t -> ?limit:int -> Format.formatter -> report -> unit
(** Prints up to [limit] results (default 20) ordered by decreasing
    support; non-[Completed] outcomes are flagged in the header line. *)

val log_src : Logs.src
(** The [rgs.miner] log source ([Info]: run start/finish). *)
