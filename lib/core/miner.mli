(** High-level mining facade.

    One-call API over {!Gsgrow} / {!Clogsgrow} / {!Gap_constrained} /
    {!Parallel_miner}: build the inverted index, mine, and present
    results. This is the entry point example programs and the CLI use; the
    per-algorithm modules remain available for finer control. *)

open Rgs_sequence

type mode =
  | All  (** GSgrow: every frequent pattern *)
  | Closed  (** CloGSgrow: closed frequent patterns only *)

type config = {
  min_sup : int;
  mode : mode;
  max_length : int option;  (** bound on pattern length *)
  max_patterns : int option;  (** output budget; truncates the DFS *)
  max_gap : int option;
      (** gap-constrained mining ({!Gap_constrained}): sound greedy lower
          bound, mines all patterns — [mode] is ignored *)
  domains : int option;
      (** mine in parallel with this many domains ({!Parallel_miner});
          incompatible with [max_patterns] and [max_gap] *)
  paged_index : bool;  (** build the B-tree index backend instead of arrays *)
}

val config :
  ?mode:mode ->
  ?max_length:int ->
  ?max_patterns:int ->
  ?max_gap:int ->
  ?domains:int ->
  ?paged_index:bool ->
  min_sup:int ->
  unit ->
  config
(** Defaults: [mode = Closed], array index, sequential, no bounds. *)

type report = {
  results : Mined.t list;  (** in DFS order *)
  truncated : bool;
  elapsed_s : float;
}

val mine : ?config:config -> ?min_sup:int -> Seqdb.t -> report
(** Mines [db]. Pass either a full [config] or just [min_sup] (with the
    defaults of {!config}).
    @raise Invalid_argument when neither [config] nor [min_sup] is given,
    when [min_sup < 1], or when [domains] is combined with [max_patterns]
    or [max_gap]. *)

val mine_indexed : config -> Inverted_index.t -> report
(** As {!mine} on a prebuilt index (amortises index construction across
    parameter sweeps; [config.paged_index] is ignored). *)

val landmarks : Seqdb.t -> Pattern.t -> Instance.full list
(** Full-landmark leftmost support set of a pattern, for displaying where
    instances occur. *)

val support : Seqdb.t -> Pattern.t -> int
(** One-off repetitive support query. *)

val pp_report : ?codec:Codec.t -> ?limit:int -> Format.formatter -> report -> unit
(** Prints up to [limit] results (default 20) ordered by decreasing
    support. *)

val log_src : Logs.src
(** The [rgs.miner] log source ([Info]: run start/finish). *)
