open Rgs_sequence

exception Too_large

let landmarks_in ?(max_landmarks = 200_000) ?(min_gap = 0) ?max_gap s p =
  let m = Pattern.length p in
  let n = Sequence.length s in
  if m = 0 then []
  else begin
    let found = ref [] in
    let count = ref 0 in
    let current = Array.make m 0 in
    (* DFS over positions: current.(0..j-2) fixed, choose l_j > l_{j-1}
       (and l_j <= l_{j-1} + max_gap + 1 for inner steps when given). *)
    let rec place j lowest =
      if j > m then begin
        incr count;
        if !count > max_landmarks then raise Too_large;
        found := Array.copy current :: !found
      end
      else begin
        let lowest_here = if j > 1 then lowest + min_gap else lowest in
        let highest =
          match max_gap with
          | Some g when j > 1 -> min n (lowest + g + 1)
          | _ -> n
        in
        for l = lowest_here + 1 to highest do
          if Event.equal (Sequence.get s l) (Pattern.get p j) then begin
            current.(j - 1) <- l;
            place (j + 1) l
          end
        done
      end
    in
    place 1 0;
    List.rev !found
  end

let all_instances ?max_landmarks db p =
  Seqdb.fold
    (fun acc i s ->
      acc
      @ List.map
          (fun landmark -> { Instance.fseq = i; landmark })
          (landmarks_in ?max_landmarks s p))
    [] db

(* Exact maximum pairwise-compatible subset by branch and bound. *)
let max_pairwise_compatible ~compatible insts =
  let arr = Array.of_list insts in
  let n = Array.length arr in
  if n > 64 then raise Too_large;
  let best = ref 0 in
  let rec search k chosen size =
    if size + (n - k) <= !best then ()
    else if k = n then best := max !best size
    else begin
      (* take arr.(k) if compatible with everything chosen *)
      if List.for_all (fun j -> compatible arr.(j) arr.(k)) chosen then
        search (k + 1) (k :: chosen) (size + 1);
      search (k + 1) chosen size
    end
  in
  search 0 [] 0;
  !best

let max_non_overlapping insts =
  max_pairwise_compatible ~compatible:Instance.non_overlapping insts

let support ?max_landmarks ?min_gap ?max_gap db p =
  if Pattern.is_empty p then 0
  else
    Seqdb.fold
      (fun acc i s ->
        let insts =
          List.map
            (fun landmark -> { Instance.fseq = i; landmark })
            (landmarks_in ?max_landmarks ?min_gap ?max_gap s p)
        in
        acc + max_non_overlapping insts)
      0 db

let frequent ?max_length db ~min_sup =
  if min_sup < 1 then invalid_arg "Brute_force.frequent: min_sup must be >= 1";
  let events = List.filter (fun e -> Seqdb.event_count db e >= min_sup) (Seqdb.alphabet db) in
  let results = ref [] in
  let within p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  let rec dfs p sup =
    results := (p, sup) :: !results;
    if within p then
      List.iter
        (fun e ->
          let q = Pattern.grow p e in
          let sup_q = support db q in
          if sup_q >= min_sup then dfs q sup_q)
        events
  in
  List.iter
    (fun e ->
      let p = Pattern.of_list [ e ] in
      let sup = support db p in
      if sup >= min_sup then dfs p sup)
    events;
  List.rev !results

let closed ?max_length db ~min_sup =
  let freq = frequent ?max_length db ~min_sup in
  List.filter
    (fun (p, sup) ->
      not
        (List.exists
           (fun (q, sup_q) ->
             sup_q = sup
             && Pattern.length q > Pattern.length p
             && Pattern.is_subpattern p ~of_:q)
           freq))
    freq
