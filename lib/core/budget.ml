type outcome =
  | Completed
  | Truncated
  | Deadline_exceeded
  | Memory_limit
  | Cancelled
  | Worker_failed

exception Stop of outcome

type t = {
  deadline : float option;  (* absolute, Unix.gettimeofday scale *)
  max_nodes : int option;
  max_words : int option;
  node_count : int Atomic.t;
  cancel_flag : bool Atomic.t;
}

let create ?deadline_s ?max_nodes ?max_words () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    max_nodes;
    max_words;
    node_count = Atomic.make 0;
    cancel_flag = Atomic.make false;
  }

let cancel t = Atomic.set t.cancel_flag true
let cancelled t = Atomic.get t.cancel_flag
let nodes t = Atomic.get t.node_count

let check t =
  let n = 1 + Atomic.fetch_and_add t.node_count 1 in
  if Atomic.get t.cancel_flag then raise (Stop Cancelled);
  (match t.max_nodes with
  | Some limit when n > limit -> raise (Stop Truncated)
  | _ -> ());
  (match t.deadline with
  | Some d when Unix.gettimeofday () > d -> raise (Stop Deadline_exceeded)
  | _ -> ());
  match t.max_words with
  | Some limit when (Gc.quick_stat ()).Gc.heap_words > limit ->
    raise (Stop Memory_limit)
  | _ -> ()

let severity = function
  | Completed -> 0
  | Truncated -> 1
  | Deadline_exceeded -> 2
  | Memory_limit -> 3
  | Cancelled -> 4
  | Worker_failed -> 5

let combine a b = if severity a >= severity b then a else b
let is_stop o = o <> Completed

let to_string = function
  | Completed -> "completed"
  | Truncated -> "truncated"
  | Deadline_exceeded -> "deadline exceeded"
  | Memory_limit -> "memory limit"
  | Cancelled -> "cancelled"
  | Worker_failed -> "worker failed"

let pp ppf o = Format.pp_print_string ppf (to_string o)

module Fault = struct
  type site = Insgrow | Worker of int

  let hook : (site -> unit) option Atomic.t = Atomic.make None

  let set f = Atomic.set hook (Some f)
  let clear () = Atomic.set hook None

  let fire site =
    match Atomic.get hook with None -> () | Some f -> f site

  let with_hook h f =
    set h;
    Fun.protect ~finally:clear f
end
