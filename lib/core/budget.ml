type outcome =
  | Completed
  | Truncated
  | Deadline_exceeded
  | Memory_limit
  | Cancelled
  | Interrupted
  | Worker_failed

exception Stop of outcome

(* Process-global cooperative shutdown, set from a signal handler. Every
   budget consults it in [check], so a SIGTERM reaches each mining domain
   at its next DFS node without the handler having to know which budgets
   exist. *)
let shutdown_flag = Atomic.make false
let signals_flag = Atomic.make false

let request_shutdown () = Atomic.set shutdown_flag true
let shutdown_requested () = Atomic.get shutdown_flag
let reset_shutdown () = Atomic.set shutdown_flag false

let install_signal_handlers () =
  Atomic.set signals_flag true;
  let handle = Sys.Signal_handle (fun _ -> request_shutdown ()) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

let signals_installed () = Atomic.get signals_flag

type t = {
  deadline : float option;  (* absolute, Unix.gettimeofday scale *)
  max_nodes : int option;
  max_words : int option;
  node_count : int Atomic.t;
  cancel_flag : bool Atomic.t;
}

let create ?deadline_s ?max_nodes ?max_words () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    max_nodes;
    max_words;
    node_count = Atomic.make 0;
    cancel_flag = Atomic.make false;
  }

let cancel t = Atomic.set t.cancel_flag true
let cancelled t = Atomic.get t.cancel_flag
let nodes t = Atomic.get t.node_count

let check t =
  let n = 1 + Atomic.fetch_and_add t.node_count 1 in
  if Atomic.get shutdown_flag then raise (Stop Interrupted);
  if Atomic.get t.cancel_flag then raise (Stop Cancelled);
  (match t.max_nodes with
  | Some limit when n > limit -> raise (Stop Truncated)
  | _ -> ());
  (match t.deadline with
  | Some d when Unix.gettimeofday () > d -> raise (Stop Deadline_exceeded)
  | _ -> ());
  match t.max_words with
  | Some limit when (Gc.quick_stat ()).Gc.heap_words > limit ->
    raise (Stop Memory_limit)
  | _ -> ()

let severity = function
  | Completed -> 0
  | Truncated -> 1
  | Deadline_exceeded -> 2
  | Memory_limit -> 3
  | Cancelled -> 4
  | Interrupted -> 5
  | Worker_failed -> 6

let combine a b = if severity a >= severity b then a else b
let is_stop o = o <> Completed

let to_string = function
  | Completed -> "completed"
  | Truncated -> "truncated"
  | Deadline_exceeded -> "deadline exceeded"
  | Memory_limit -> "memory limit"
  | Cancelled -> "cancelled"
  | Interrupted -> "interrupted"
  | Worker_failed -> "worker failed"

let pp ppf o = Format.pp_print_string ppf (to_string o)

module Fault = struct
  type site =
    | Insgrow
    | Worker of int
    | Checkpoint_io
    | Socket_write
    | Steal of int
    | Shard_merge

  let site_name = function
    | Insgrow -> "insgrow"
    | Worker _ -> "worker"
    | Checkpoint_io -> "checkpoint_io"
    | Socket_write -> "socket_write"
    | Steal _ -> "steal"
    | Shard_merge -> "shard_merge"

  let hook : (site -> unit) option Atomic.t = Atomic.make None

  let set f = Atomic.set hook (Some f)
  let clear () = Atomic.set hook None

  let fire site =
    match Atomic.get hook with None -> () | Some f -> f site

  let with_hook h f =
    set h;
    Fun.protect ~finally:clear f
end
