open Rgs_sequence

type dispatch =
  ranges:(int * int) array ->
  (Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t) ->
  Inverted_index.t ->
  Support_set.t ->
  Event.t ->
  Support_set.t array

type t = { ranges : (int * int) array; dispatch : dispatch option }

let make ?dispatch db ~shards = { ranges = Seqdb.shard db shards; dispatch }
let ranges t = t.ranges
let num_shards t = Array.length t.ranges

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* INSgrow (Algorithm 2) extends each per-sequence group independently:
   the grown group of S_i depends only on S_i's instances and S_i's index
   column. So growing a slice equals slicing the grown whole, and the
   per-shard results partition the full result's groups — [combine] just
   reassembles them in ascending-sequence order. The differential check
   in [strategy ~verify:true] and the [@steal] suite pin this down. *)
let grow t ?(trace = Trace.null) base idx s e =
  let n = Array.length t.ranges in
  if n <= 1 && t.dispatch = None then base idx s e
  else begin
    let parts =
      match t.dispatch with
      | Some dispatch -> dispatch ~ranges:t.ranges base idx s e
      | None ->
        Array.map
          (fun (lo, hi) -> base idx (Support_set.slice s ~lo ~hi) e)
          t.ranges
    in
    if Array.length parts <> n then
      invalid_arg "Shard_merge.grow: dispatch returned wrong shard count";
    (* a cancellation raised here lands between the per-shard grows and
       the merge — the site the chaos harness attacks *)
    Budget.Fault.fire Budget.Fault.Shard_merge;
    let t0 = now_ns () in
    let merged = Array.fold_left Support_set.combine Support_set.empty parts in
    let dt = now_ns () - t0 in
    Metrics.add Metrics.shard_merge_ns dt;
    Trace.instant trace Trace.Shard_merge ~a0:n ~a1:(dt / 1000);
    merged
  end

let strategy ?(verify = false) ?trace t (base : Engine.strategy) =
  let grow_sharded idx s e =
    let merged = grow t ?trace base.Engine.grow idx s e in
    if verify then begin
      let whole = base.Engine.grow idx s e in
      if not (Support_set.equal merged whole) then
        failwith
          (base.Engine.name
         ^ ": sharded grow diverged from unsharded grow (Shard_merge)")
    end;
    merged
  in
  { base with Engine.grow = grow_sharded }
