(** Answer modes for a mining run: everything, only patterns containing a
    target subsequence, or the k best by support — pruned {e inside} the
    DFS rather than by filtering a full answer afterwards.

    A {!t} names what the caller wants back; {!collector} compiles it into
    a {!plan} of per-node hooks the {!Engine} DFS consults plus a result
    sink. All three plans are {e lossless} for their answer:

    - {b targeted}: containment of the target [Q] in a grown pattern is
      decided by greedy left-to-right matching, and the matched count
      advances by at most one per append — so it rides along as a tiny
      per-node state. An extension subtree is cut as soon as the unmatched
      remainder of [Q] can no longer fit in the remaining length budget
      (and the whole search is cut up front when some event of [Q] is not
      frequent — a frequent pattern only uses frequent events).
    - {b top-k}: a size-[k] min-heap of the best supports seen. Once full,
      no descendant of a node with support at most [min(heap)] can enter
      (support is antimonotone under appends, Theorem 1), so the support
      floor rises to [min(heap) + 1] and prunes exactly like the static
      Apriori bound. Ties at the boundary keep the earliest DFS arrival.
    - {b all}: the trivial plan; the engine behaves identically to the
      un-queried miners. *)

open Rgs_sequence

type t =
  | All  (** every pattern the miner would emit *)
  | Targeted of Pattern.t
      (** only patterns containing the target as a subsequence *)
  | Top_k of int  (** the [k] best patterns by repetitive support *)

val validate : t -> unit
(** @raise Invalid_argument on an empty target or [k < 1]. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Stable one-token encoding (["all"], ["target:1.2.3"], ["topk:100"]) —
    used in checkpoint fingerprints, so it must not change meaning across
    versions. *)

val pp : Format.formatter -> t -> unit

(** {1 Plans} — the per-node hooks the engine consults. *)

type plan = {
  root_state : Event.t -> int;  (** query state of a size-1 root pattern *)
  child_state : int -> Event.t -> int;
      (** state of [P ◦ e] from the state of [P] *)
  cut : state:int -> depth:int -> bool;
      (** cut the subtree of a (prospective) node at [depth] with [state]
          {e before} growing its support set *)
  floor : unit -> int;
      (** current dynamic support floor, at least [min_sup]; extensions
          below it are pruned (sound by antimonotonicity) *)
  emit_ok : state:int -> bool;  (** emit patterns with this state? *)
}

val trivial : min_sup:int -> plan
(** The mine-everything plan: no state, no cuts, constant floor. An engine
    run under this plan is step-for-step identical to one with no plan. *)

(** {1 Collectors} — a plan coupled with result collection. *)

type collector = {
  plan : plan;
  offer : Mined.t -> unit;  (** the engine's [emit] callback *)
  results : unit -> Mined.t list;
      (** the answer: DFS order for [All]/[Targeted], support-descending
          (ties: shorter first, then {!Pattern.compare}) for [Top_k] *)
}

val collector :
  ?max_length:int -> events:Event.t list -> min_sup:int -> t -> collector
(** [collector ~events ~min_sup q] compiles [q]. [events] must be the
    candidate event list the engine will grow with (the targeted
    frequent-event cut checks membership there); [max_length] must match
    the engine's or the targeted length cut stays disabled. A collector is
    single-use: fresh state per run.
    @raise Invalid_argument as {!validate}. *)

(** {1 Shared collectors} — one answer, many domains.

    The work-stealing executor ({!Parallel_miner.mine_steal}) runs one
    query across every worker domain, so the query state must be safe to
    consult concurrently. [All] and [Targeted] plans are stateless pure
    closures and shared as-is. [Top_k] keeps one min-heap behind a mutex;
    the plan's {!plan.floor} reads an atomic cache of
    [max min_sup (min heap)] so the DFS hot path never takes the lock.

    Unlike the single-domain {!collector}, the shared top-k floor is
    [min(heap)] — {e not} [min(heap) + 1] — so patterns that {e tie} the
    k-th best support are still mined regardless of worker scheduling;
    {!shared.finalize} then resolves ties canonically by sorting the
    collected union with {!Mined.compare_by_support_desc} and keeping [k]
    (the same rule as [Miner.mine_resumable]'s global re-merge). The
    result is schedule-independent. *)

type shared = {
  shared_plan : plan;  (** consulted concurrently by every worker *)
  shared_offer : Mined.t -> unit;
      (** feed every emitted pattern here (in addition to collecting it);
          thread-safe *)
  finalize : Mined.t list -> Mined.t list;
      (** the answer, from the union of all collected patterns: identity
          for [All]/[Targeted], sort-and-take-[k] for [Top_k] *)
}

val shared :
  ?max_length:int -> events:Event.t list -> min_sup:int -> t -> shared
(** Compile [q] for a multi-domain run. Same [events]/[max_length]
    contract as {!collector}; single-use.
    @raise Invalid_argument as {!validate}. *)
