(** Sharded instance growth: per-shard INSgrow over database slices,
    merged back with {!Support_set.combine}.

    A shard is a contiguous 1-based sequence range produced by
    {!Seqdb.shard} — an index {e view}, no events copied. Because
    INSgrow (Algorithm 2) extends every per-sequence instance group
    independently (the grown group of [S_i] depends only on [S_i]'s own
    instances and index column — Section III's per-sequence landmark
    walk), growing a {!Support_set.slice} yields exactly the slice of
    the full grown set. The per-shard results therefore partition the
    unsharded result's groups, and [combine] — associative and
    commutative over disjoint sequence ids, preserving each group's
    right-shift order — reassembles them into a set {e content-equal}
    to the unsharded grow. That identity is this module's proof
    obligation: [strategy ~verify:true] checks it differentially on
    every grow, and the [@steal] suite pins it across databases,
    backends and shard counts.

    Wrapping only the strategy's [grow] leaves the DFS untouched, so
    sharding composes with every engine feature (closure checking, gap
    constraints, queries, budgets) and with the work-stealing executor. *)

open Rgs_sequence

type t
(** A shard layout over one database: the balanced ranges, computed once
    per run. *)

type dispatch =
  ranges:(int * int) array ->
  (Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t) ->
  Inverted_index.t ->
  Support_set.t ->
  Event.t ->
  Support_set.t array
(** How a layout computes its per-shard grown parts. [dispatch ~ranges
    base idx s e] must return exactly one grown part per range, where
    part [i] is {e content-equal} to [base idx (slice s ranges.(i)) e].
    The in-process default computes each part inline; a supervisor
    (in [lib/server/]) substitutes a closure that ships the slices to
    worker processes and may fall back to [base] per shard — this
    closure is the seam that keeps core free of any process-management
    dependency. Called from whichever domain is growing, possibly
    several concurrently: implementations must be thread-safe. *)

val make : ?dispatch:dispatch -> Seqdb.t -> shards:int -> t
(** [make db ~shards] computes the balanced layout via {!Seqdb.shard}.
    Without [dispatch], a layout with fewer than two shards (small
    database, or [shards = 1]) makes {!grow} fall through to the
    unsharded growth; with [dispatch], every growth goes through it —
    even single-shard layouts, so a lone supervised worker still serves.
    @raise Invalid_argument when [shards < 1]. *)

val ranges : t -> (int * int) array
(** The inclusive 1-based sequence ranges, in order. *)

val num_shards : t -> int

val grow :
  t ->
  ?trace:Trace.t ->
  (Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t) ->
  Inverted_index.t ->
  Support_set.t ->
  Event.t ->
  Support_set.t
(** [grow t base idx s e] computes each shard's grown part — via the
    layout's {!dispatch} when present, else by running [base] on each
    shard's slice of [s] inline — and combines the results. Times the
    combine into [Metrics.shard_merge_ns], records a [Shard_merge]
    trace instant, and fires the {!Budget.Fault.Shard_merge} site
    between the grows and the merge (the mid-merge cancellation point
    the chaos harness attacks). With fewer than two shards and no
    dispatch this is exactly [base idx s e]. *)

val strategy : ?verify:bool -> ?trace:Trace.t -> t -> Engine.strategy -> Engine.strategy
(** The sharded version of a strategy: same name and closure machinery,
    [grow] replaced by {!grow}. With [~verify:true] every growth also
    runs the unsharded [base] and fails loudly when the results differ —
    the differential proof obligation, meant for tests (it doubles the
    growth work). *)
