(* rgsminer: mine (closed) repetitive gapped subsequences from a sequence
   file or a packed binary store.

   Examples:
     rgsminer --min-sup 3 data.txt
     rgsminer --min-sup 18 --all --max-length 10 --limit 50 traces.txt
     rgsminer --min-sup 5 --format spmf data.spmf --instances
     rgsminer --min-sup 2 --deadline 5 --checkpoint run.ckpt data.txt
     rgsminer --min-sup 2 --checkpoint run.ckpt --resume data.txt
     rgsminer --min-sup 3 --trace run.json --trace-level nodes data.txt
     rgsminer --min-sup 3 --stats stats.prom data.txt
     rgsminer pack data.txt -o data.rgsdb
     rgsminer --min-sup 3 --store data.rgsdb *)

open Cmdliner
open Rgs_sequence
open Rgs_core
module Store = Rgs_store.Store

type format = Tokens | Chars | Spmf

let load format path =
  match format with
  | Tokens ->
    let db, codec = Seq_io.load_tokens path in
    (db, Some codec)
  | Chars ->
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (Seq_io.parse_chars content, None)
  | Spmf -> (Seq_io.load_spmf path, None)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

(* Exit code for a run stopped by SIGINT/SIGTERM: the handlers request a
   cooperative Budget stop, the final checkpoint records are appended, the
   partial report is printed, and the process exits 130 (documented in the
   README's failure-modes runbook). *)
let exit_interrupted = 130

(* --target follows the input format: a letter string for chars, and
   comma/space-separated event names (tokens) or ids (spmf) otherwise. *)
let parse_target format codec s =
  let split s =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun t -> t <> "")
  in
  match format with
  | Chars -> Pattern.of_string s
  | Spmf ->
    Pattern.of_list
      (List.map
         (fun t ->
           match int_of_string_opt t with
           | Some e when e >= 0 -> e
           | _ -> invalid_arg (Printf.sprintf "--target: bad event id %S" t))
         (split s))
  | Tokens ->
    let codec =
      match codec with
      | Some c -> c
      | None -> invalid_arg "--target: no codec for this input"
    in
    Pattern.of_list
      (List.map
         (fun t ->
           match Codec.find codec t with
           | Some e -> e
           | None ->
             invalid_arg
               (Printf.sprintf "--target: event %S does not occur in the input" t))
         (split s))

(* [--shards auto] / [--workers auto] parse as 0; resolution to the
   machine's recommended count happens here, after Cmdliner. *)
let resolve_auto = function
  | Some 0 -> Some (Parallel_miner.auto_shards ())
  | n -> n

let run input store format min_sup all max_length max_patterns limit instances max_gap parallel
    shards workers steal index_kind deadline max_nodes max_words target top_k compress_delta
    checkpoint resume retry_quarantined
    trace_file trace_level trace_ring stats_file stats_interval verbose =
  setup_logs verbose;
  Budget.install_signal_handlers ();
  if stats_interval <> None && stats_file = None then begin
    Format.eprintf "rgsminer: --stats-interval requires --stats@.";
    exit 1
  end;
  if target <> None && top_k <> None then begin
    Format.eprintf "rgsminer: --target and --top-k are mutually exclusive@.";
    exit 1
  end;
  if (input = None) = (store = None) then begin
    Format.eprintf "rgsminer: exactly one of FILE or --store is required@.";
    exit 1
  end;
  if steal && (checkpoint <> None || resume) then begin
    Format.eprintf
      "rgsminer: --steal does not checkpoint; drop --checkpoint/--resume or \
       use --parallel@.";
    exit 1
  end;
  if workers <> None && steal then begin
    Format.eprintf
      "rgsminer: --workers (supervised shard processes) cannot be combined \
       with --steal@.";
    exit 1
  end;
  let workers = resolve_auto workers in
  let shards =
    match (resolve_auto shards, workers) with
    | None, Some w -> Some w
    | Some s, Some w when s <> w ->
      Format.eprintf
        "rgsminer: --shards %d and --workers %d disagree (one worker process \
         serves one shard; drop one flag or make them equal)@."
        s w;
      exit 1
    | s, _ -> s
  in
  let input = match (input, store) with
    | Some path, _ | _, Some path -> path
    | None, None -> assert false
  in
  match
    let db, codec =
      match store with
      | Some path -> Store.open_db path
      | None -> load format input
    in
    Format.printf "%a@.@." Seqdb.pp_stats (Seqdb.stats db);
    let mode = if all then Miner.All else Miner.Closed in
    (* --steal implies a domain pool: dynamic work stealing is a property
       of the parallel executor *)
    let domains =
      if parallel || steal then Some (Parallel_miner.default_domains ())
      else None
    in
    let max_patterns = if parallel || steal then None else max_patterns in
    let query =
      match (target, top_k) with
      | Some t, _ -> Query.Targeted (parse_target format codec t)
      | None, Some k -> Query.Top_k k
      | None, None -> Query.All
    in
    (* --workers: one supervised rgsworker process per shard runs the
       instance growths, crash-isolated; failures degrade back to
       in-process growth with identical output. When mining from a
       --store the workers map that same file; otherwise the supervisor
       packs a temporary store for them. *)
    let supervisor =
      match workers with
      | None -> None
      | Some n ->
        let scfg =
          Rgs_server.Supervisor.config ~shards:n
            ?gap:(Option.map (fun g -> (0, g)) max_gap)
            ()
        in
        Some (Rgs_server.Supervisor.create ?store scfg db)
    in
    let config =
      Miner.config ~mode ~query ?max_length ?max_patterns ?max_gap ?domains
        ?shards ~steal ?index_kind ?deadline_s:deadline ?max_nodes ?max_words
        ?shard_dispatch:
          (Option.map Rgs_server.Supervisor.dispatch supervisor)
        ~min_sup ()
    in
    let trace =
      match trace_file with
      | None -> Trace.null
      | Some _ -> Trace.create ?capacity:trace_ring ~level:trace_level ()
    in
    let before = if stats_file <> None then Some (Metrics.snapshot ()) else None in
    (* With --stats-interval the run's metric deltas are written
       periodically while mining (and once more at the end) instead of
       only at exit; the same helper drives the daemon's periodic dump. *)
    let ticker =
      match (stats_file, stats_interval, before) with
      | Some path, Some interval_s, Some baseline ->
        Some (Rgs_server.Stats_dump.start ~baseline ~interval_s ~path ())
      | _ -> None
    in
    let finish_ticker () = Option.iter Rgs_server.Stats_dump.stop ticker in
    let report =
      match
        (* queried parallel runs also go through the root-partitioned
           driver: its per-root plans compose with domain pools, which
           [Miner.mine] rejects *)
        if
          checkpoint <> None || resume
          || (query <> Query.All && domains <> None && not steal)
        then
          Miner.mine_resumable ?checkpoint ~resume ~retry_quarantined ~trace
            config db
        else Miner.mine ~config ~trace db
      with
      | report -> report
      | exception e ->
        finish_ticker ();
        Option.iter Rgs_server.Supervisor.shutdown supervisor;
        raise e
    in
    (match supervisor with
    | None -> ()
    | Some sup ->
      Rgs_server.Supervisor.shutdown sup;
      Format.printf "%a@." Rgs_server.Supervisor.pp_stats
        (Rgs_server.Supervisor.stats sup));
    (match trace_file with
    | None -> ()
    | Some path ->
      Trace.write_chrome path trace;
      Format.printf "trace: %d event(s) written to %s%s@."
        (List.length (Trace.events trace))
        path
        (let d = Trace.dropped trace in
         if d > 0 then Printf.sprintf " (%d dropped: ring full)" d else ""));
    (match (stats_file, before, ticker) with
    | Some path, _, Some _ ->
      finish_ticker ();
      Format.printf "stats: written to %s@." path
    | Some path, Some before, None ->
      let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Metrics.write_stats ~path delta;
      Format.printf "stats: written to %s@." path
    | _ -> ());
    (* δ-compression is a post-mining pass: cluster the answer under the
       support-distance tolerance and report only the representatives. *)
    let report =
      match compress_delta with
      | None -> report
      | Some delta ->
        let covers = Rgs_post.Compress.delta_cover ~delta report.Miner.results in
        let absorbed =
          List.fold_left
            (fun a c -> a + List.length c.Rgs_post.Compress.covered)
            0 covers
        in
        Format.printf
          "delta-cover (delta=%g): %d representative(s), %d pattern(s) absorbed@."
          delta (List.length covers) absorbed;
        { report with Miner.results = Rgs_post.Compress.representatives covers }
    in
    (match codec with
    | Some codec -> Format.printf "%a@." (Miner.pp_report ~codec ~limit) report
    | None -> Format.printf "%a@." (fun ppf r -> Miner.pp_report ~limit ppf r) report);
    (match report.Miner.outcome with
    | Budget.Completed -> ()
    | outcome ->
      Format.printf "run stopped early: %a — results above are partial%s@."
        Budget.pp outcome
        (match checkpoint with
        | Some path -> Printf.sprintf " (checkpoint saved to %s; rerun with --resume)" path
        | None -> ""));
    if report.Miner.quarantined > 0 then
      Format.printf
        "%d poison root(s) quarantined — their patterns are missing; rerun \
         with --resume --retry-quarantined to re-mine them@."
        report.Miner.quarantined;
    if instances then begin
      let sorted = List.sort Mined.compare_by_support_desc report.Miner.results in
      List.iteri
        (fun k r ->
          if k < limit then begin
            Format.printf "@.%a:@." Pattern.pp r.Mined.pattern;
            List.iter
              (fun f -> Format.printf "  %a@." Instance.pp_full f)
              (Miner.landmarks db r.Mined.pattern)
          end)
        sorted
    end;
    report.Miner.outcome
  with
  | Budget.Interrupted -> exit_interrupted
  | _ -> 0
  | exception Seq_io.Parse_error { line; msg } ->
    Format.eprintf "rgsminer: %s:%d: %s@." input line msg;
    1
  | exception Checkpoint.Corrupt msg ->
    Format.eprintf "rgsminer: checkpoint: %s@." msg;
    1
  | exception Store.Invalid_store e ->
    Format.eprintf "rgsminer: %s: %s@." input (Store.error_message e);
    1
  | exception Invalid_argument msg ->
    Format.eprintf "rgsminer: %s@." msg;
    1

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Input sequence file. Exactly one of $(docv) or $(b,--store) is required.")

let store_arg =
  Arg.(value & opt (some file) None & info [ "store" ] ~docv:"FILE"
         ~doc:"Mine from a packed $(b,.rgsdb) store (see $(b,rgsminer pack)) instead \
               of a text file: the corpus is mapped read-only in milliseconds and \
               shared across parallel domains. Event names come from the store's \
               NAME section, so output matches the $(b,tokens) text path byte for \
               byte. Mutually exclusive with $(docv).")

let format =
  let format_conv =
    Arg.enum [ ("tokens", Tokens); ("chars", Chars); ("spmf", Spmf) ]
  in
  Arg.(value & opt format_conv Tokens & info [ "format"; "f" ] ~docv:"FMT"
         ~doc:"Input format: $(b,tokens) (names per line), $(b,chars) (A-Z strings), or $(b,spmf).")

let min_sup =
  Arg.(required & opt (some int) None & info [ "min-sup"; "s" ] ~docv:"N"
         ~doc:"Repetitive support threshold (>= 1).")

let all =
  Arg.(value & flag & info [ "all"; "a" ]
         ~doc:"Mine all frequent patterns (GSgrow) instead of closed ones (CloGSgrow).")

let max_length =
  Arg.(value & opt (some int) None & info [ "max-length" ] ~docv:"N"
         ~doc:"Bound pattern length.")

let max_patterns =
  Arg.(value & opt (some int) None & info [ "max-patterns" ] ~docv:"N"
         ~doc:"Stop after N patterns (output becomes a prefix of the full answer).")

let limit =
  Arg.(value & opt int 25 & info [ "limit"; "n" ] ~docv:"N"
         ~doc:"How many patterns to print.")

let instances =
  Arg.(value & flag & info [ "instances"; "i" ]
         ~doc:"Also print the leftmost support set (landmarks) of printed patterns.")

let max_gap =
  Arg.(value & opt (some int) None & info [ "max-gap"; "g" ] ~docv:"N"
         ~doc:"Gap-constrained mining: instances may skip at most N events between \
               successive pattern events (sound greedy lower bound; mines all \
               patterns, not closed ones).")

let parallel =
  Arg.(value & flag & info [ "parallel"; "p" ]
         ~doc:"Mine with one domain per core (ignored with $(b,--max-gap)).")

(* a shard/worker count, or "auto" (parsed as 0) for the machine's
   recommended domain count *)
let count_or_auto =
  let parse s =
    match s with
    | "auto" -> Ok 0
    | _ -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (`Msg (Printf.sprintf "expected a count or 'auto', got %S" s)))
  in
  let print ppf = function
    | 0 -> Format.pp_print_string ppf "auto"
    | n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

let shards =
  Arg.(value & opt (some count_or_auto) None & info [ "shards" ] ~docv:"N"
         ~doc:"Partition the database into N balanced shards and run every \
               instance growth shard-by-shard, merging the per-shard support \
               sets ($(b,auto) or $(b,0): one shard per recommended domain). \
               Output is identical to an unsharded run in every mode, \
               including checkpoint/resume.")

let workers =
  Arg.(value & opt (some count_or_auto) None & info [ "workers" ] ~docv:"N"
         ~doc:"Run instance growths in N supervised $(b,rgsworker) processes, \
               one per shard ($(b,auto) or $(b,0): one per recommended \
               domain; implies $(b,--shards) N). Workers heartbeat and are \
               restarted with exponential backoff when they crash, hang or \
               corrupt a frame; flapping shards are quarantined and the run \
               degrades to in-process growth — the mined output is identical \
               in every case. Not compatible with $(b,--steal).")

let steal =
  Arg.(value & flag & info [ "steal" ]
         ~doc:"Parallel mining with dynamic work stealing: idle domains steal \
               deferred DFS subtrees from busy ones instead of waiting at \
               root granularity, which helps skewed databases where one root \
               dominates. Implies $(b,--parallel); output is identical to the \
               sequential miner. Works with $(b,--max-gap), $(b,--target) and \
               $(b,--top-k), but not with $(b,--checkpoint)/$(b,--resume) or \
               $(b,--max-patterns).")

let index_kind =
  let kind_conv =
    Arg.enum
      [
        ("csr", Inverted_index.Kcsr);
        ("legacy", Inverted_index.Klegacy);
        ("paged", Inverted_index.Kpaged);
      ]
  in
  Arg.(value & opt (some kind_conv) None & info [ "index" ] ~docv:"KIND"
         ~doc:"Inverted-index backend: $(b,csr) (columnar, default), \
               $(b,legacy) (per-event hashtables), or $(b,paged) (B-trees).")

let deadline =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget. When it expires the run stops gracefully and \
               reports the patterns mined so far.")

let max_nodes =
  Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N"
         ~doc:"DFS-node budget: stop gracefully after visiting N search nodes.")

let max_words =
  Arg.(value & opt (some int) None & info [ "max-words" ] ~docv:"N"
         ~doc:"GC heap ceiling in words: stop gracefully when the OCaml heap \
               exceeds N words.")

let target =
  Arg.(value & opt (some string) None & info [ "target" ] ~docv:"PATTERN"
         ~doc:"Mine only patterns containing PATTERN as a subsequence, pruning \
               unreachable DFS subtrees instead of filtering afterwards. \
               PATTERN follows $(b,--format): comma/space-separated event \
               names ($(b,tokens)), a letter string ($(b,chars)), or ids \
               ($(b,spmf)). Mutually exclusive with $(b,--top-k).")

let top_k =
  Arg.(value & opt (some int) None & info [ "top-k" ] ~docv:"K"
         ~doc:"Mine only the K best patterns by repetitive support: a rising \
               support floor prunes subtrees that can no longer reach the \
               answer. Output is support-descending. Mutually exclusive with \
               $(b,--target) and $(b,--max-patterns).")

let compress_delta =
  Arg.(value & opt (some float) None & info [ "compress-delta" ] ~docv:"D"
         ~doc:"After mining, cluster the answer by greedy delta-cover \
               (a pattern is absorbed by a supersequence representative \
               retaining at least a (1-D) fraction of its support, D in \
               [0,1]) and report only the representatives.")

let checkpoint =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Checkpoint completed DFS roots to FILE (written atomically when the \
               run ends for any reason). Implies root-partitioned mining; not \
               compatible with $(b,--max-gap) or $(b,--max-patterns).")

let resume =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Resume from the $(b,--checkpoint) file, mining only the roots it \
               does not already cover. The checkpoint must match the input data, \
               threshold, mode and $(b,--max-length).")

let retry_quarantined =
  Arg.(value & flag & info [ "retry-quarantined" ]
         ~doc:"Put roots the checkpoint recorded as quarantined (crashed twice) \
               back on the mining frontier instead of skipping them.")

let trace_file =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON timeline of the run to FILE. \
               Open it in ui.perfetto.dev or chrome://tracing. Event volume is \
               set by $(b,--trace-level).")

let trace_level =
  let level_conv =
    Arg.enum [ ("off", Trace.Off); ("roots", Trace.Roots); ("nodes", Trace.Nodes) ]
  in
  Arg.(value & opt level_conv Trace.Roots & info [ "trace-level" ] ~docv:"LEVEL"
         ~doc:"Trace detail: $(b,roots) (default; per-root DFS spans and run \
               milestones), $(b,nodes) (adds one event per DFS node, extension \
               and closure check), or $(b,off).")

let trace_ring =
  Arg.(value & opt (some int) None & info [ "trace-ring" ] ~docv:"N"
         ~doc:"Trace ring-buffer capacity in events per buffer (default 65536, \
               rounded up to a power of two). Once full the ring keeps the \
               newest events; overwrites are counted in the \
               $(b,trace_dropped_events) metric and noted next to the trace \
               file summary.")

let stats_file =
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE"
         ~doc:"Write the run's metric deltas to FILE: JSON when FILE ends in \
               $(b,.json), Prometheus text exposition otherwise. See \
               OBSERVABILITY.md for every metric.")

let stats_interval =
  Arg.(value & opt (some float) None & info [ "stats-interval" ] ~docv:"SECONDS"
         ~doc:"With $(b,--stats), rewrite FILE every SECONDS while mining \
               (atomically, via rename) instead of only at exit, so a long run \
               can be watched live. The final write still lands at exit.")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log mining progress to stderr.")

(* --- pack: text database -> .rgsdb binary store --- *)

let pack input format output check verbose =
  setup_logs verbose;
  match
    let db, codec = load format input in
    let out =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension input ^ ".rgsdb"
    in
    Store.write ?codec ~path:out db;
    let t = Store.open_store ~verify:check out in
    Format.printf "packed %s -> %s@." input out;
    Format.printf "  %d sequence(s), %d event(s), alphabet %d, digest %s@."
      (Seqdb.size db) (Seqdb.total_length db) (Seqdb.alphabet_size db)
      (Store.digest t);
    List.iter
      (fun (tag, words) -> Format.printf "  section %s: %d word(s)@." tag words)
      (Store.sections t);
    if check then begin
      if Store.digest t <> Seqdb.content_digest db then begin
        Format.eprintf "rgsminer pack: digest mismatch after round-trip@.";
        exit 1
      end;
      Format.printf "check: section CRCs and content digest verified@."
    end;
    0
  with
  | code -> code
  | exception Seq_io.Parse_error { line; msg } ->
    Format.eprintf "rgsminer pack: %s:%d: %s@." input line msg;
    1
  | exception Store.Invalid_store e ->
    Format.eprintf "rgsminer pack: %s@." (Store.error_message e);
    1
  | exception Sys_error msg ->
    Format.eprintf "rgsminer pack: %s@." msg;
    1
  | exception Invalid_argument msg ->
    Format.eprintf "rgsminer pack: %s@." msg;
    1

let pack_cmd =
  let pack_input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Input sequence file to pack.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"OUT"
           ~doc:"Store file to write (default: $(b,FILE) with its extension \
                 replaced by $(b,.rgsdb)). Written atomically; packing the same \
                 corpus twice yields byte-identical files.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"After packing, re-open the store, verify every section CRC \
                 and the sealed content digest.")
  in
  Cmd.v
    (Cmd.info "pack" ~doc:"pack a sequence file into a .rgsdb binary store")
    Term.(const pack $ pack_input $ format $ output $ check $ verbose)

let mine_term =
  Term.(const run $ input $ store_arg $ format $ min_sup $ all $ max_length
        $ max_patterns $ limit
        $ instances $ max_gap $ parallel $ shards $ workers $ steal $ index_kind $ deadline $ max_nodes
        $ max_words $ target $ top_k $ compress_delta $ checkpoint $ resume
        $ retry_quarantined $ trace_file $ trace_level $ trace_ring
        $ stats_file $ stats_interval $ verbose)

let cmd =
  let doc = "mine (closed) repetitive gapped subsequences from a sequence database" in
  Cmd.group ~default:mine_term
    (Cmd.info "rgsminer" ~version:"1.2.0" ~doc)
    [ pack_cmd ]

let () = exit (Cmd.eval' cmd)
