(* rgsgen: generate the synthetic datasets used in the experiments.

   Examples:
     rgsgen quest -D 5000 -C 20 -N 10000 -S 20 -o d5c20n10s20.txt
     rgsgen gazelle --scale 0.1 -o gazelle.txt
     rgsgen tcas -o tcas.txt
     rgsgen jboss -o jboss.txt *)

open Cmdliner
open Rgs_sequence
open Rgs_datagen

let save db codec output =
  let contents =
    match codec with
    | Some codec -> Seq_io.print_tokens codec db
    | None ->
      (* events as integer tokens *)
      let codec = Codec.create () in
      let rename = Hashtbl.create 64 in
      let name e =
        match Hashtbl.find_opt rename e with
        | Some n -> n
        | None ->
          let n = string_of_int e in
          Hashtbl.add rename e n;
          ignore (Codec.intern codec n);
          n
      in
      let buf = Buffer.create 4096 in
      Seqdb.iter
        (fun _ s ->
          Sequence.iteri
            (fun pos e ->
              if pos > 1 then Buffer.add_char buf ' ';
              Buffer.add_string buf (name e))
            s;
          Buffer.add_char buf '\n')
        db;
      Buffer.contents buf
  in
  match output with
  | None -> print_string contents
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents);
    Format.eprintf "wrote %s@." path

let finish db codec output stats =
  if stats then Format.eprintf "%a@." Seqdb.pp_stats (Seqdb.stats db);
  save db codec output;
  0

let output =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Output file (stdout when absent).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print dataset statistics to stderr.")

let quest_cmd =
  let run d c n s num_patterns output seed stats =
    let db = Quest_gen.generate (Quest_gen.params ~d ~c ~n ~s ~num_patterns ~seed ()) in
    finish db None output stats
  in
  let d = Arg.(value & opt int 5000 & info [ "D" ] ~docv:"N" ~doc:"Number of sequences.") in
  let c = Arg.(value & opt int 20 & info [ "C" ] ~docv:"N" ~doc:"Average events per sequence.") in
  let n = Arg.(value & opt int 10000 & info [ "N" ] ~docv:"N" ~doc:"Number of distinct events.") in
  let s = Arg.(value & opt int 20 & info [ "S" ] ~docv:"N" ~doc:"Average maximal pattern length.") in
  let np = Arg.(value & opt int 100 & info [ "pool" ] ~docv:"N" ~doc:"Pattern pool size.") in
  Cmd.v
    (Cmd.info "quest" ~doc:"IBM QUEST-style generator (paper's synthetic datasets)")
    Term.(const run $ d $ c $ n $ s $ np $ output $ seed $ stats)

let gazelle_cmd =
  let run scale output seed stats =
    let db = Clickstream_gen.generate (Clickstream_gen.gazelle_like ~scale ~seed ()) in
    finish db None output stats
  in
  let scale =
    Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"X"
           ~doc:"Fraction of the real Gazelle's 29369 sequences.")
  in
  Cmd.v
    (Cmd.info "gazelle" ~doc:"Gazelle-like clickstream generator")
    Term.(const run $ scale $ output $ seed $ stats)

let tcas_cmd =
  let run scale output seed stats =
    let db = Trace_gen.generate (Trace_gen.tcas_like ~scale ~seed ()) in
    finish db None output stats
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X"
           ~doc:"Fraction of the real TCAS's 1578 traces.")
  in
  Cmd.v
    (Cmd.info "tcas" ~doc:"TCAS-like program trace generator")
    Term.(const run $ scale $ output $ seed $ stats)

let jboss_cmd =
  let run output seed stats =
    let db, codec = Jboss_gen.generate (Jboss_gen.params ~seed ()) in
    finish db (Some codec) output stats
  in
  Cmd.v
    (Cmd.info "jboss" ~doc:"JBoss-style transaction-component trace generator (case study)")
    Term.(const run $ output $ seed $ stats)

let cmd =
  let doc = "generate synthetic sequence datasets for the experiments" in
  Cmd.group (Cmd.info "rgsgen" ~version:"1.0.0" ~doc)
    [ quest_cmd; gazelle_cmd; tcas_cmd; jboss_cmd ]

let () = exit (Cmd.eval' cmd)
