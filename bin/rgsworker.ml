(* rgsworker: one supervised shard worker process.

   Not meant to be launched by hand — rgsminer --workers / rgsminerd
   --shard-workers spawn one per shard with a socketpair as
   stdin/stdout. The worker maps the shared .rgsdb store, answers
   encoded growth requests for its sequence range, and heartbeats; all
   supervision (liveness, restarts, quarantine) lives in the parent.
   Logs go to stderr only — stdout carries protocol frames. *)

open Cmdliner

let run store lo hi heartbeat_ms verbose =
  Logs.set_reporter (Logs.format_reporter ~app:Format.err_formatter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
  if lo < 1 || hi < lo then begin
    Format.eprintf "rgsworker: need 1 <= lo <= hi (got --lo %d --hi %d)@." lo hi;
    2
  end
  else
    match Rgs_server.Shard_worker.serve ~heartbeat_ms ~store ~lo ~hi () with
    | () -> 0
    | exception e ->
      (* startup failure (bad store path, failed verify): the supervisor
         sees EOF before the handshake and accounts a spawn failure *)
      Format.eprintf "rgsworker: %s@." (Printexc.to_string e);
      1

let store =
  Arg.(required & opt (some string) None & info [ "store" ] ~docv:"FILE"
         ~doc:"Packed $(b,.rgsdb) store to map (shared with the supervisor).")

let lo =
  Arg.(required & opt (some int) None & info [ "lo" ] ~docv:"N"
         ~doc:"First sequence of the served shard (inclusive, 1-based).")

let hi =
  Arg.(required & opt (some int) None & info [ "hi" ] ~docv:"N"
         ~doc:"Last sequence of the served shard (inclusive).")

let heartbeat_ms =
  Arg.(value & opt int 50 & info [ "heartbeat-ms" ] ~docv:"MS"
         ~doc:"Liveness heartbeat period (frames on stdout).")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ]
         ~doc:"Log the serve lifecycle to stderr.")

let cmd =
  let doc = "serve one database shard's instance growths to a supervisor" in
  Cmd.v
    (Cmd.info "rgsworker" ~version:"1.2.0" ~doc)
    Term.(const run $ store $ lo $ hi $ heartbeat_ms $ verbose)

let () = exit (Cmd.eval' cmd)
