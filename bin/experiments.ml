(* experiments: regenerate any table or figure of the paper by id.

   Examples:
     experiments table1
     experiments fig2 --scale 0.1
     experiments fig4
     experiments casestudy
     experiments comparators
     experiments ablation
     experiments all *)

open Cmdliner
module E = Rgs_experiments

(* When RGS_CSV_DIR is set, every printed table is also written there as
   CSV (slug derived from the title) for plotting. *)
let csv_dir = Sys.getenv_opt "RGS_CSV_DIR"

let slug title =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c
      else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
      else '_')
    title

let print_table title t =
  Format.printf "== %s ==@.%s@." title (Rgs_post.Report.to_string t);
  match csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (slug title ^ ".csv") in
    Rgs_post.Export.save path (Rgs_post.Export.report_to_csv t);
    Format.eprintf "wrote %s@." path

let run_table1 () = print_table "Table I: support semantics on Example 1.1" (E.Table1.report ())

let run_sweep name (rows, label) =
  print_table (Printf.sprintf "%s — %s" name label) (E.Sweeps.report ~x_label:"min_sup" rows);
  print_string (E.Sweeps.charts rows);
  print_newline ()

let run_fig5 scale timeout_s =
  let rows, label = E.Sweeps.fig5 ~scale ?timeout_s () in
  print_table (Printf.sprintf "Figure 5 — %s" label) (E.Sweeps.report ~x_label:"D" rows)

let run_fig6 scale timeout_s =
  let rows, label = E.Sweeps.fig6 ~scale ?timeout_s () in
  print_table (Printf.sprintf "Figure 6 — %s" label)
    (E.Sweeps.report ~x_label:"avg_len" rows)

let run_casestudy () =
  let o = E.Case_study.run () in
  print_table "Case study — JBoss-style transaction traces" (E.Case_study.report o);
  Format.printf "longest pattern events:@.";
  List.iter (fun n -> Format.printf "  %s@." n) o.E.Case_study.longest_events

let run_comparators scale timeout_s =
  let db = E.Exp_common.quest_d5c20n10s20 ~scale () in
  print_table "Comparators — D5C20N10S20-like, min_sup=10"
    (E.Comparators.report (E.Comparators.compare_all ?timeout_s db ~min_sup:10));
  let db = E.Exp_common.tcas_like ~scale:0.25 () in
  print_table "Comparators — TCAS-like, min_sup=300"
    (E.Comparators.report
       (E.Comparators.compare_all ?timeout_s ~max_length:8 db ~min_sup:300))

let run_ablation timeout_s =
  let db = E.Exp_common.tcas_like ~scale:0.25 () in
  print_table "Ablation — TCAS-like (scale 0.25), min_sup=200"
    (E.Ablation.report (E.Ablation.run ?timeout_s db ~min_sup:200))

let scale =
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"X"
         ~doc:"Dataset scale relative to the paper (1.0 = paper size).")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Per-run time budget (cut-off).")

let stats_arg =
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE"
         ~doc:"Write the experiment's Metrics counter delta to $(docv) \
               (JSON when it ends in .json, Prometheus text exposition \
               otherwise) — same format as rgsminer --stats.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON timeline of the experiment's \
               mining runs to $(docv) — same format as rgsminer --trace; \
               open in ui.perfetto.dev.")

let trace_level_arg =
  let level_conv =
    Arg.enum
      [ ("off", Rgs_sequence.Trace.Off); ("roots", Rgs_sequence.Trace.Roots);
        ("nodes", Rgs_sequence.Trace.Nodes) ]
  in
  Arg.(value & opt level_conv Rgs_sequence.Trace.Roots
       & info [ "trace-level" ] ~docv:"LEVEL"
         ~doc:"Trace detail for $(b,--trace): $(b,roots) (default), \
               $(b,nodes), or $(b,off).")

(* Snapshot around the experiment so the written stats attribute only this
   run's work, not whatever ran earlier in the process. *)
let with_stats stats f =
  let before = Rgs_sequence.Metrics.snapshot () in
  let r = f () in
  (match stats with
  | None -> ()
  | Some path ->
    Rgs_sequence.Metrics.write_stats ~path
      (Rgs_sequence.Metrics.diff ~before ~after:(Rgs_sequence.Metrics.snapshot ()));
    Format.eprintf "wrote %s@." path);
  r

(* The experiment drivers record through Exp_common's ambient trace;
   install one for the invocation and export it afterwards. *)
let with_trace trace_file trace_level f =
  match trace_file with
  | None -> f ()
  | Some path ->
    let trace = Rgs_sequence.Trace.create ~level:trace_level () in
    E.Exp_common.set_trace trace;
    let r =
      Fun.protect ~finally:(fun () -> E.Exp_common.set_trace Rgs_sequence.Trace.null) f
    in
    Rgs_sequence.Trace.write_chrome path trace;
    Format.eprintf "wrote %s@." path;
    r

let with_obs stats trace_file trace_level f =
  with_stats stats (fun () -> with_trace trace_file trace_level f)

let obs_args = Term.(const (fun s t l -> (s, t, l)) $ stats_arg $ trace_arg $ trace_level_arg)

let simple name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const (fun (stats, tf, tl) -> with_obs stats tf tl f) $ obs_args)

let sweep_cmd name doc make =
  let run scale timeout_s (stats, tf, tl) =
    with_obs stats tf tl (fun () -> make ~scale ?timeout_s (); 0)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ scale $ timeout $ obs_args)

let fig2_cmd =
  sweep_cmd "fig2" "Figure 2: vary min_sup on D5C20N10S20" (fun ~scale ?timeout_s () ->
      run_sweep "Figure 2" (E.Sweeps.fig2 ~scale ?timeout_s ()))

let fig3_cmd =
  sweep_cmd "fig3" "Figure 3: vary min_sup on Gazelle-like" (fun ~scale ?timeout_s () ->
      run_sweep "Figure 3" (E.Sweeps.fig3 ~scale ?timeout_s ()))

let fig4_cmd =
  sweep_cmd "fig4" "Figure 4: vary min_sup on TCAS-like" (fun ~scale ?timeout_s () ->
      run_sweep "Figure 4" (E.Sweeps.fig4 ~scale:(max scale 0.25) ?timeout_s ()))

let fig5_cmd =
  let run scale timeout_s (stats, tf, tl) =
    with_obs stats tf tl (fun () -> run_fig5 scale timeout_s; 0)
  in
  Cmd.v (Cmd.info "fig5" ~doc:"Figure 5: vary the number of sequences")
    Term.(const run $ scale $ timeout $ obs_args)

let fig6_cmd =
  let run scale timeout_s (stats, tf, tl) =
    with_obs stats tf tl (fun () -> run_fig6 scale timeout_s; 0)
  in
  Cmd.v (Cmd.info "fig6" ~doc:"Figure 6: vary the average sequence length")
    Term.(const run $ scale $ timeout $ obs_args)

let comparators_cmd =
  let store_arg =
    Arg.(value & opt (some file) None & info [ "store" ] ~docv:"FILE"
           ~doc:"Run the comparator suite on a packed $(b,.rgsdb) store \
                 instead of the built-in generated datasets.")
  in
  let store_min_sup =
    Arg.(value & opt int 10 & info [ "min-sup" ] ~docv:"N"
           ~doc:"Support threshold for the $(b,--store) corpus (default 10; \
                 ignored without $(b,--store)).")
  in
  let run scale timeout_s store min_sup (stats, tf, tl) =
    with_obs stats tf tl (fun () ->
        (match store with
        | None -> run_comparators scale timeout_s
        | Some path ->
          let db, _ = Rgs_store.Store.open_db path in
          print_table
            (Printf.sprintf "Comparators — %s, min_sup=%d"
               (Filename.basename path) min_sup)
            (E.Comparators.report
               (E.Comparators.compare_all ?timeout_s db ~min_sup)));
        0)
  in
  Cmd.v (Cmd.info "comparators" ~doc:"Sequential-miner runtime comparison")
    Term.(const run $ scale $ timeout $ store_arg $ store_min_sup $ obs_args)

let ablation_cmd =
  let run timeout_s (stats, tf, tl) =
    with_obs stats tf tl (fun () -> run_ablation timeout_s; 0)
  in
  Cmd.v (Cmd.info "ablation" ~doc:"CloGSgrow checking-strategy ablation")
    Term.(const run $ timeout $ obs_args)

(* gen-quest regenerates a synthetic corpus from a checked-in key=value
   config (data/*.config). Generation is deterministic in the config, so
   the emitted file — and any .rgsdb packed from it — is reproducible
   byte-for-byte; the datasets themselves are never checked in. *)
let gen_quest_cmd =
  let config_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG"
           ~doc:"Quest_gen key=value config file (e.g. \
                 data/quest_paper.config).")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path; written in the SPMF format ($(b,-1)-separated \
                 integer events, $(b,-2)-terminated sequences), which \
                 round-trips event ids exactly.")
  in
  let run config out =
    match Rgs_datagen.Quest_gen.load_config config with
    | exception Failure msg ->
      Format.eprintf "experiments: %s@." msg;
      1
    | p ->
      let db = Rgs_datagen.Quest_gen.generate p in
      Rgs_sequence.Seq_io.save_spmf db out;
      Format.printf "wrote %s: %s — %d sequences, %d events, seed %d@." out
        (Rgs_datagen.Quest_gen.label p)
        (Rgs_sequence.Seqdb.size db)
        (Rgs_sequence.Seqdb.total_length db)
        p.Rgs_datagen.Quest_gen.seed;
      0
  in
  Cmd.v
    (Cmd.info "gen-quest"
       ~doc:"Regenerate a QUEST-style corpus from a config file")
    Term.(const run $ config_arg $ out_arg)

let all_cmd =
  let run scale timeout_s (stats, tf, tl) =
    with_obs stats tf tl (fun () ->
        run_table1 ();
        run_sweep "Figure 2" (E.Sweeps.fig2 ~scale ?timeout_s ());
        run_sweep "Figure 3" (E.Sweeps.fig3 ~scale ?timeout_s ());
        run_sweep "Figure 4" (E.Sweeps.fig4 ~scale:(max scale 0.25) ?timeout_s ());
        run_fig5 scale timeout_s;
        run_fig6 scale timeout_s;
        run_comparators scale timeout_s;
        run_ablation timeout_s;
        run_casestudy ();
        0)
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run $ scale $ timeout $ obs_args)

let cmd =
  let doc =
    "regenerate the paper's tables and figures (set RGS_CSV_DIR to also \
     dump each table as CSV)"
  in
  Cmd.group
    (Cmd.info "experiments" ~version:"1.0.0" ~doc)
    [
      simple "table1" "Table I: support semantics comparison" (fun () -> run_table1 (); 0);
      fig2_cmd;
      fig3_cmd;
      fig4_cmd;
      fig5_cmd;
      fig6_cmd;
      comparators_cmd;
      ablation_cmd;
      gen_quest_cmd;
      simple "casestudy" "Section IV-B case study" (fun () -> run_casestudy (); 0);
      all_cmd;
    ]

let () = exit (Cmd.eval' cmd)
