(* rgsminerd: fault-tolerant mining service daemon.

   Serves mining jobs over a Unix-domain socket: bounded admission with
   typed overload shedding, round-robin fairness across clients, per-job
   budgets clamped by server-wide limits, per-job durable checkpoint logs
   (resubmitting a job id resumes it — including after a daemon restart),
   graceful drain on SIGTERM, and an optional idle watchdog.

   Examples:
     rgsminerd --socket /run/rgs.sock --state-dir /var/lib/rgsminerd
     rgsminerd --socket d.sock --state-dir state --workers 4 --queue 32 \
       --max-deadline 60 --idle-timeout 30 --stats stats.json *)

open Cmdliner
open Rgs_server

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

(* --shards/--shard-workers auto parse as 0; resolve to the machine's
   recommended count here, after Cmdliner *)
let resolve_auto = function
  | Some 0 -> Some (Rgs_core.Parallel_miner.auto_shards ())
  | n -> n

let run socket state_dir queue_capacity workers shards shard_workers
    max_deadline max_nodes max_words idle_timeout drain_grace stats_file
    stats_interval stores verbose =
  setup_logs verbose;
  let shards = resolve_auto shards in
  let shard_workers = resolve_auto shard_workers in
  let limits =
    {
      Job.max_deadline_s = max_deadline;
      max_nodes;
      max_words;
    }
  in
  (* Preload every --store before listening: each is mapped, CRC-verified
     end to end and cached, so a corrupt store fails the boot (exit 1)
     rather than the first job that references it. *)
  List.iter
    (fun path ->
      match Job.preload_store path with
      | Ok db ->
        Logs.info (fun m ->
            m "store %s: %d sequence(s), %d event(s) mapped" path
              (Rgs_sequence.Seqdb.size db)
              (Rgs_sequence.Seqdb.total_length db))
      | Error msg ->
        Format.eprintf "rgsminerd: --store %s@." msg;
        exit 1)
    stores;
  match
    Daemon.config ~queue_capacity ~workers ~limits ?idle_timeout_s:idle_timeout
      ~drain_grace_s:drain_grace ?stats_path:stats_file
      ?stats_interval_s:stats_interval ?shards ?shard_workers
      ~socket_path:socket ~state_dir ()
  with
  | cfg -> (
    match Daemon.run cfg with
    | code -> code
    | exception Unix.Unix_error (err, fn, arg) ->
      Format.eprintf "rgsminerd: %s %s: %s@." fn arg (Unix.error_message err);
      1)
  | exception Invalid_argument msg ->
    Format.eprintf "rgsminerd: %s@." msg;
    1

let socket =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on (created; a stale file is replaced).")

let state_dir =
  Arg.(required & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Directory for per-job durable checkpoint logs (created if missing). \
               Resubmitting a job id resumes from its log — including after a \
               daemon crash or restart.")

let queue_capacity =
  Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N"
         ~doc:"Bounded pending-job queue capacity; submissions beyond it are \
               load-shed with a typed Overloaded response.")

let workers =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
         ~doc:"Pool domains running jobs concurrently.")

let count_or_auto =
  let parse s =
    match s with
    | "auto" -> Ok 0
    | _ -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (`Msg (Printf.sprintf "expected a count or 'auto', got %S" s)))
  in
  let print ppf = function
    | 0 -> Format.pp_print_string ppf "auto"
    | n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

let shards =
  Arg.(value & opt (some count_or_auto) None & info [ "shards" ] ~docv:"N"
         ~doc:"Run every job's instance growths over N balanced database \
               shards, merging per-shard support sets ($(b,auto) or $(b,0): \
               one per recommended domain). A deployment knob: job output \
               and checkpoints are identical to an unsharded daemon, so it \
               can be changed across restarts freely.")

let shard_workers =
  Arg.(value & opt (some count_or_auto) None & info [ "shard-workers" ] ~docv:"N"
         ~doc:"Run each job's per-shard instance growths in N supervised \
               $(b,rgsworker) processes, one per shard ($(b,auto) or \
               $(b,0): one per recommended domain; implies $(b,--shards) N). \
               Workers heartbeat and are restarted with backoff on crash, \
               hang or frame corruption; flapping shards are quarantined \
               and the job degrades to in-process growth — output and \
               checkpoints are identical in every case.")

let max_deadline =
  Arg.(value & opt (some float) None & info [ "max-deadline" ] ~docv:"SECONDS"
         ~doc:"Server-wide ceiling on any job's wall-clock budget; requests are \
               clamped, and jobs that ask for no deadline get this one.")

let max_nodes =
  Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N"
         ~doc:"Server-wide ceiling on any job's DFS-node budget.")

let max_words =
  Arg.(value & opt (some int) None & info [ "max-words" ] ~docv:"N"
         ~doc:"Server-wide ceiling on any job's GC heap-words budget.")

let idle_timeout =
  Arg.(value & opt (some float) None & info [ "idle-timeout" ] ~docv:"SECONDS"
         ~doc:"Idle watchdog: cancel a running job whose DFS stops making \
               progress for this long (off by default).")

let drain_grace =
  Arg.(value & opt float 5.0 & info [ "drain-grace" ] ~docv:"SECONDS"
         ~doc:"On SIGTERM, let in-flight jobs finish for this long before \
               cancelling them (their checkpoints still get final records).")

let stats_file =
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE"
         ~doc:"Periodically dump absolute metric readings to FILE (atomically \
               replaced): JSON when FILE ends in $(b,.json), Prometheus text \
               otherwise.")

let stats_interval =
  Arg.(value & opt (some float) None & info [ "stats-interval" ] ~docv:"SECONDS"
         ~doc:"Period of the $(b,--stats) dump (default 10).")

let stores =
  Arg.(value & opt_all file [] & info [ "store" ] ~docv:"FILE"
         ~doc:"Preload a packed $(b,.rgsdb) store at startup (repeatable): the \
               file is mapped, every section CRC verified, and the mapping \
               cached so jobs referencing the path share it. A store that \
               fails verification aborts the boot.")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ]
         ~doc:"Log job lifecycle events to stderr.")

let cmd =
  let doc = "serve repetitive gapped subsequence mining jobs over a socket" in
  Cmd.v
    (Cmd.info "rgsminerd" ~version:"1.2.0" ~doc)
    Term.(const run $ socket $ state_dir $ queue_capacity $ workers $ shards
          $ shard_workers $ max_deadline $ max_nodes $ max_words
          $ idle_timeout $ drain_grace $ stats_file $ stats_interval $ stores
          $ verbose)

let () = exit (Cmd.eval' cmd)
