(* Quickstart: the paper's running example (Tables II-IV), end to end.

   Run with: dune exec examples/quickstart.exe *)

open Rgs_sequence
open Rgs_core

let () =
  (* The database of Table III. *)
  let db = Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ] in
  Format.printf "Database:@.%a@." Seqdb.pp db;

  (* Repetitive support of a single pattern. *)
  let acb = Pattern.of_string "ACB" in
  Format.printf "sup(ACB) = %d@." (Miner.support db acb);

  (* Where exactly does it occur? (leftmost support set, Table IV) *)
  Format.printf "Leftmost support set of ACB:@.";
  List.iter
    (fun inst -> Format.printf "  %a@." Instance.pp_full inst)
    (Miner.landmarks db acb);

  (* Mine all frequent patterns (GSgrow), min_sup = 3 — Example 3.4. *)
  let all = Miner.mine ~config:(Miner.config ~mode:Miner.All ~min_sup:3 ()) db in
  Format.printf "@.GSgrow, min_sup = 3:@.%a@." (fun ppf r -> Miner.pp_report ~limit:30 ppf r) all;

  (* Mine closed patterns only (CloGSgrow) — Examples 3.5 / 3.6. *)
  let closed = Miner.mine ~config:(Miner.config ~mode:Miner.Closed ~min_sup:3 ()) db in
  Format.printf "CloGSgrow, min_sup = 3:@.%a@." (fun ppf r -> Miner.pp_report ~limit:30 ppf r) closed;

  (* Why is AA missing? It is not closed: ACA has the same support, and by
     landmark-border checking nothing grown from AA can be closed. *)
  let idx = Inverted_index.build db in
  let aa = Pattern.of_string "AA" in
  Format.printf "AA closed? %b; AA prunable? %b@."
    (Closure.is_closed idx aa)
    (Closure.lb_prunable idx aa);

  (* AB is also non-closed (ACB has equal support) but NOT prunable:
     ABD is closed and has AB as a prefix. *)
  let ab = Pattern.of_string "AB" in
  Format.printf "AB closed? %b; AB prunable? %b@."
    (Closure.is_closed idx ab)
    (Closure.lb_prunable idx ab)
