(* Classifying program traces with repetitive patterns as features — the
   paper's future-work proposal (Section V): "The patterns which repeat
   frequently in some sequences while infrequently in others could be
   discriminative features for classification", e.g. buggy vs non-buggy
   execution traces.

   We synthesise two trace populations from the same control-flow model —
   a healthy one, and a "buggy" one in which a retry loop spins more and a
   cleanup block is sometimes skipped — mine closed repetitive patterns
   over the combined database, score them for discriminativeness, and
   cross-validate a nearest-centroid classifier on held-out traces.

   Run with: dune exec examples/trace_classification.exe *)

open Rgs_sequence
open Rgs_core
open Rgs_datagen
module Features = Rgs_post.Features

let healthy_model =
  let open Trace_gen in
  Seq
    [
      Emit 0; Emit 1; (* init *)
      Loop { body = Seq [ Emit 2; Emit 3; Emit 4 ]; continue_p = 0.3; max_iters = 3 };
      Emit 5; Emit 6; (* cleanup *)
    ]

let buggy_model =
  let open Trace_gen in
  Seq
    [
      Emit 0; Emit 1;
      (* the bug: the retry loop spins much longer and sometimes takes an
         error path (7 = warn, 8 = retry) inside an iteration *)
      Loop
        {
          body = Seq [ Emit 2; Emit 3; Opt (0.4, Seq [ Emit 7; Emit 8 ]); Emit 4 ];
          continue_p = 0.85;
          max_iters = 10;
        };
      (* ... and cleanup is sometimes skipped *)
      Opt (0.5, Seq [ Emit 5; Emit 6 ]);
    ]

let make_traces rng model n =
  List.init n (fun _ -> Trace_gen.run_model rng ~max_length:60 model)

let () =
  let rng = Splitmix.create ~seed:13 in
  let n_train = 30 and n_test = 10 in
  let healthy = make_traces rng healthy_model (n_train + n_test) in
  let buggy = make_traces rng buggy_model (n_train + n_test) in
  let train_db =
    Seqdb.of_sequences
      (List.filteri (fun i _ -> i < n_train) healthy
      @ List.filteri (fun i _ -> i < n_train) buggy)
  in
  let labels = Array.init (2 * n_train) (fun i -> i >= n_train) (* true = buggy *) in

  (* Mine closed repetitive patterns over the combined training traces.
     min_sup below one-instance-per-trace so behaviours present in only one
     population (like the sometimes-skipped cleanup block) are still
     mined. *)
  let report =
    Miner.mine ~config:(Miner.config ~min_sup:(n_train * 2 / 3) ~max_length:10 ()) train_db
  in
  Format.printf "mined %d closed patterns over %d training traces@."
    (List.length report.Miner.results)
    (Seqdb.size train_db);

  (* Which behaviours discriminate? The retry-loop patterns should win,
     with the skipped-cleanup patterns next. *)
  let m = Features.feature_matrix ~num_sequences:(Seqdb.size train_db) report.Miner.results in
  let scored_indices = Features.discriminative_indices m ~labels in
  Format.printf "@.top discriminative patterns (|mean buggy - mean healthy|):@.";
  Array.iteri
    (fun k (j, score) ->
      if k < 5 then
        Format.printf "  %a  score %.2f@." Pattern.pp m.Features.patterns.(j) score)
    scored_indices;

  (* Keep only the strongest features, then cross-validate nearest-centroid
     on held-out traces. *)
  let top_k = min 5 (Array.length scored_indices) in
  let columns = Array.init top_k (fun k -> fst scored_indices.(k)) in
  let projected = Features.project m ~columns in
  let model = Features.train_nearest_centroid projected ~labels in
  let test_one expected trace =
    let single = Seqdb.of_sequences [ trace ] in
    let v =
      Features.features_of_sequence single ~patterns:projected.Features.patterns 1
    in
    Features.classify model v = expected
  in
  let held_out label pool =
    List.filteri (fun i _ -> i >= n_train) pool |> List.map (test_one label)
  in
  let outcomes = held_out false healthy @ held_out true buggy in
  let correct = List.length (List.filter Fun.id outcomes) in
  Format.printf "@.held-out accuracy: %d/%d@." correct (List.length outcomes)
