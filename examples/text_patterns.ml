(* Mining gapped word patterns from text — the paper's future work names
   "long sequences of DNA, protein, and text data" as targets for
   repetitive gapped subsequence mining.

   Correlative constructions ("either ... or", "not only ... but also",
   "the more ... the more") are word patterns with arbitrary material in
   between — precisely gapped subsequences. We synthesise sentences around
   such templates plus filler prose, mine closed repetitive patterns, and
   check the templates surface with their gaps intact.

   Run with: dune exec examples/text_patterns.exe *)

open Rgs_sequence
open Rgs_core
open Rgs_datagen

let templates =
  [
    [ "either"; "*"; "or"; "*" ];
    [ "not"; "only"; "*"; "but"; "also"; "*" ];
    [ "the"; "more"; "*"; "the"; "more"; "*" ];
  ]

let fillers =
  [| "coffee"; "tea"; "rain"; "sun"; "code"; "tests"; "cats"; "dogs";
     "books"; "music"; "bread"; "cheese"; "wine"; "trains"; "rivers" |]

let glue = [| "and"; "with"; "near"; "under"; "beyond" |]

let gen_sentence rng codec =
  let buf = ref [] in
  let word w = buf := Codec.intern codec w :: !buf in
  let template = List.nth templates (Splitmix.int rng (List.length templates)) in
  (* lead-in words *)
  for _ = 1 to Splitmix.int rng 3 do
    word (Splitmix.choice rng glue);
    word (Splitmix.choice rng fillers)
  done;
  List.iter
    (fun t ->
      if t = "*" then begin
        (* gap: one or two filler words *)
        word (Splitmix.choice rng fillers);
        if Splitmix.bernoulli rng ~p:0.4 then word (Splitmix.choice rng fillers)
      end
      else word t)
    template;
  Sequence.of_list (List.rev !buf)

let () =
  let rng = Splitmix.create ~seed:21 in
  let codec = Codec.create () in
  let sentences = List.init 300 (fun _ -> gen_sentence rng codec) in
  let db = Seqdb.of_sequences sentences in
  Format.printf "corpus: %d sentences, %d distinct words@.@."
    (Seqdb.size db) (Seqdb.alphabet_size db);

  (* Every sentence uses one of three templates, so each correlative
     skeleton appears in roughly a third of sentences. *)
  let report =
    Miner.mine ~config:(Miner.config ~mode:Miner.Closed ~min_sup:60 ~max_length:6 ()) db
  in
  Format.printf "closed patterns with min_sup=60:@.";
  let interesting r =
    (* skip pure-filler patterns: keep those whose words include a template
       keyword *)
    let keywords = [ "either"; "or"; "not"; "only"; "but"; "also"; "the"; "more" ] in
    List.exists
      (fun e -> List.mem (Codec.name codec e) keywords)
      (Pattern.to_list r.Mined.pattern)
  in
  report.Miner.results
  |> List.filter interesting
  |> List.sort Mined.compare_by_length_desc
  |> List.iteri (fun k r ->
         if k < 8 then
           Format.printf "  %a (sup=%d)@." (Pattern.pp_with codec) r.Mined.pattern
             r.Mined.support);

  (* The skeletons themselves, queried directly. *)
  Format.printf "@.direct support queries:@.";
  let q words =
    let pattern = Pattern.of_list (List.map (fun w -> Codec.intern codec w) words) in
    Format.printf "  %-28s sup = %d@."
      (String.concat " ... " words)
      (Miner.support db pattern)
  in
  q [ "either"; "or" ];
  q [ "not"; "only"; "but"; "also" ];
  q [ "the"; "more"; "the"; "more" ]
