(* Customer purchase-history analysis — the motivating scenario of the
   paper's introduction (Example 1.1 and the Related Work discussion).

   Events model a trading company's request handling:
     place   - request placed
     process - request in-process
     cancel  - request cancelled
     deliver - product delivered

   Sequential pattern mining cannot distinguish a behaviour that happens
   once per customer from one that repeats within customers; repetitive
   support can. We mine both and compare.

   Run with: dune exec examples/customer_behavior.exe *)

open Rgs_sequence
open Rgs_core

let () =
  let codec = Codec.of_names [ "place"; "process"; "cancel"; "deliver" ] in
  let s names = Sequence.of_list (List.map (fun n -> Option.get (Codec.find codec n)) names) in

  (* 50 heavy repeat-purchasers and 50 one-shot customers, as in the
     paper's 100-sequence example: S1..S50 = CABABABABABD, S51..S100 = ABCD
     with A = place, B = process, C = cancel, D = deliver. *)
  let repeat_purchaser =
    s [ "cancel"; "place"; "process"; "place"; "process"; "place"; "process";
        "place"; "process"; "place"; "process"; "deliver" ]
  in
  let one_shot = s [ "place"; "process"; "cancel"; "deliver" ] in
  let db =
    Seqdb.of_sequences
      (List.init 100 (fun k -> if k < 50 then repeat_purchaser else one_shot))
  in

  let place_process = Pattern.of_list [ 0; 1 ] in
  let cancel_deliver = Pattern.of_list [ 2; 3 ] in

  (* Sequential support: both patterns look identical (100 customers). *)
  Format.printf "sequential support  place->process : %d@."
    (Rgs_baselines.Seq_mining.support db place_process);
  Format.printf "sequential support  cancel->deliver: %d@."
    (Rgs_baselines.Seq_mining.support db cancel_deliver);

  (* Repetitive support separates them: 5*50 + 50 = 300 vs 100. *)
  Format.printf "repetitive support  place->process : %d@."
    (Miner.support db place_process);
  Format.printf "repetitive support  cancel->deliver: %d@."
    (Miner.support db cancel_deliver);

  (* Mine closed patterns and show per-customer-group feature values: the
     future-work section suggests per-sequence supports as classification
     features; here they cleanly separate the two customer groups. *)
  let report = Miner.mine ~config:(Miner.config ~min_sup:100 ()) db in
  Format.printf "@.Closed patterns with min_sup = 100:@.%a@."
    (Miner.pp_report ~codec ~limit:10) report;

  let counts = Support_set.per_sequence_counts in
  List.iter
    (fun r ->
      let per_seq = counts r.Mined.support_set in
      let group_a = List.filter (fun (i, _) -> i <= 50) per_seq in
      let group_b = List.filter (fun (i, _) -> i > 50) per_seq in
      let avg l =
        if l = [] then 0.
        else
          float_of_int (List.fold_left (fun a (_, c) -> a + c) 0 l)
          /. float_of_int (List.length l)
      in
      Format.printf "%a: avg instances/customer — repeaters %.1f, one-shots %.1f@."
        (Pattern.pp_with codec) r.Mined.pattern (avg group_a) (avg group_b))
    report.Miner.results
