(* Software behaviour mining — the paper's case study (Section IV-B).

   Mines closed repetitive gapped subsequences from JBoss-style transaction
   component traces, applies the case study's post-processing (density >
   40%, maximality, ranking by length), and contrasts the result with
   iterative-pattern occurrence counting.

   Run with: dune exec examples/software_traces.exe *)

open Rgs_sequence
open Rgs_core
open Rgs_datagen

let () =
  let db, codec = Jboss_gen.generate (Jboss_gen.params ()) in
  Format.printf "JBoss-style traces:@.%a@.@." Seqdb.pp_stats (Seqdb.stats db);

  (* The paper uses min_sup = 18 on 28 traces. We additionally bound the
     output so the example stays fast; the bench harness runs it fully. *)
  let config =
    Miner.config ~mode:Miner.Closed ~min_sup:18 ~max_patterns:1000 ()
  in
  let report = Miner.mine ~config db in
  Format.printf "closed patterns (min_sup=18): %d%s in %.2fs@."
    (List.length report.Miner.results)
    (if report.Miner.truncated then "+ (truncated)" else "")
    report.Miner.elapsed_s;

  (* Case-study post-processing: density > 40%, maximal only, rank by
     length. *)
  let kept = Rgs_post.Filters.case_study_pipeline report.Miner.results in
  Format.printf "after density>40%% + maximality + ranking: %d patterns@.@."
    (List.length kept);

  (* The longest pattern should span several semantic blocks of the
     transaction life cycle. *)
  (match kept with
  | [] -> Format.printf "no pattern survived post-processing@."
  | longest :: _ ->
    Format.printf "longest pattern (length %d, sup %d):@."
      (Pattern.length longest.Mined.pattern)
      longest.Mined.support;
    List.iter
      (fun e -> Format.printf "  %s@." (Codec.name codec e))
      (Pattern.to_list longest.Mined.pattern);
    (* Label which life-cycle blocks the pattern touches. *)
    let touched =
      List.filter
        (fun (_, events) ->
          List.exists
            (fun n ->
              match Codec.find codec n with
              | Some e -> List.mem e (Pattern.to_list longest.Mined.pattern)
              | None -> false)
            events)
        Jboss_gen.blocks
    in
    Format.printf "blocks touched: %s@."
      (String.concat " -> " (List.map fst touched)));

  (* The most frequent fine-grained behaviour: lock -> unlock. *)
  let lock = Option.get (Codec.find codec "TransImpl.lock") in
  let unlock = Option.get (Codec.find codec "TransImpl.unlock") in
  let lock_unlock = Pattern.of_list [ lock; unlock ] in
  Format.printf "@.sup(TransImpl.lock -> TransImpl.unlock) = %d@."
    (Miner.support db lock_unlock);

  (* Contrast with iterative patterns (Lo et al.): their QRE semantics
     forbids pattern events inside gaps, so repeated enlistment blocks
     break one long behaviour into pieces; repetitive gapped subsequences
     keep it whole. *)
  Format.printf "iterative-pattern occurrences of lock->unlock = %d@."
    (Rgs_baselines.Iterative.db_support db lock_unlock)
