(* DNA motif mining — the "future work" domain the paper names: "extend our
   algorithms for mining approximate repetitive patterns with gap
   constraints, which is useful for mining subsequences from long sequences
   of DNA".

   The example shows WHY the gap constraint matters on small alphabets: we
   plant a gapped motif into random reads, and

   - unconstrained repetitive support barely separates the planted database
     from a control database (every short pattern occurs by chance when
     gaps are unbounded), while
   - gap-bounded occurrence counting (Zhang et al., Table I row 3)
     separates them by an order of magnitude, and
   - a greedy gap-constrained grower — the future-work idea in thirty
     lines, reusing this library's counting — recovers the planted motif.

   Run with: dune exec examples/dna_motifs.exe *)

open Rgs_sequence
open Rgs_core
open Rgs_datagen
module Gap = Rgs_baselines.Gap_occurrences

let bases = [| 'A'; 'C'; 'G'; 'T' |]

let base_of_char c =
  match c with 'A' -> 0 | 'C' -> 1 | 'G' -> 2 | 'T' -> 3 | _ -> assert false

let pattern_of_string s =
  Pattern.of_list (List.map base_of_char (List.init (String.length s) (String.get s)))

let pattern_to_dna p =
  String.concat "" (List.map (fun e -> String.make 1 bases.(e)) (Pattern.to_list p))

let make_db ~plant ~motif ~reads ~read_len rng =
  let gen_read () =
    let read = Bytes.create read_len in
    for i = 0 to read_len - 1 do
      Bytes.set read i (Splitmix.choice rng bases)
    done;
    if plant then
      (* two gapped copies of the motif at random anchors, gaps 0..2 *)
      for _ = 1 to 2 do
        let pos = ref (Splitmix.int rng (read_len / 2)) in
        String.iter
          (fun c ->
            if !pos < read_len then begin
              Bytes.set read !pos c;
              pos := !pos + 1 + Splitmix.int rng 3
            end)
          motif
      done;
    Sequence.of_list (List.init read_len (fun i -> base_of_char (Bytes.get read i)))
  in
  Seqdb.of_sequences (List.init reads (fun _ -> gen_read ()))

(* Greedy gap-constrained motif recovery: grow from every base, always
   appending the base with the highest gap-bounded occurrence count. *)
let recover_motif db ~length ~gmin ~gmax =
  let grow_from seed =
    let rec extend p =
      if Pattern.length p >= length then p
      else begin
        let best =
          List.map (fun b -> (b, Gap.db_count db (Pattern.grow p b) ~gmin ~gmax)) [ 0; 1; 2; 3 ]
          |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
          |> List.hd
        in
        extend (Pattern.grow p (fst best))
      end
    in
    extend (Pattern.of_list [ seed ])
  in
  List.map grow_from [ 0; 1; 2; 3 ]
  |> List.map (fun p -> (p, Gap.db_count db p ~gmin ~gmax))
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  |> List.hd

let () =
  let motif = "ACGTACG" in
  let reads = 50 and read_len = 80 in
  let planted = make_db ~plant:true ~motif ~reads ~read_len (Splitmix.create ~seed:7) in
  let control = make_db ~plant:false ~motif ~reads ~read_len (Splitmix.create ~seed:8) in
  let p = pattern_of_string motif in
  Format.printf "reads: %d of length %d, alphabet ACGT, motif %s planted twice per read@.@."
    reads read_len motif;

  let sup_planted = Miner.support planted p in
  let sup_control = Miner.support control p in
  Format.printf
    "unbounded-gap repetitive support of %s: planted = %d, control = %d (excess %+d)@."
    motif sup_planted sup_control (sup_planted - sup_control);
  Format.printf
    "  -> with unbounded gaps every 7-mer is \"frequent\" in random DNA;@.";
  Format.printf
    "     this is the regime the paper's future work flags for gap constraints.@.@.";

  let gp = Gap.db_count planted p ~gmin:0 ~gmax:2 in
  let gc = Gap.db_count control p ~gmin:0 ~gmax:2 in
  Format.printf "gap-bounded occurrences (gaps 0..2): planted = %d, control = %d@.@." gp gc;

  let recovered, score = recover_motif planted ~length:(String.length motif) ~gmin:0 ~gmax:2 in
  Format.printf "greedy gap-constrained recovery from the planted db: %s (count %d)%s@."
    (pattern_to_dna recovered) score
    (if pattern_to_dna recovered = motif then "  <- planted motif recovered" else "");
  let recovered_c, score_c =
    recover_motif control ~length:(String.length motif) ~gmin:0 ~gmax:2
  in
  Format.printf "same procedure on the control db: %s (count %d)@."
    (pattern_to_dna recovered_c) score_c
